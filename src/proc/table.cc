#include "proc/table.h"

#include <algorithm>

#include "kern/cluster.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::proc {

using rpc::Reply;
using rpc::Request;
using rpc::ServiceId;
using sim::HostId;
using sim::JobClass;
using sim::Time;
using util::Err;
using util::Status;

const char* proc_state_name(ProcState s) {
  switch (s) {
    case ProcState::kRunnable: return "runnable";
    case ProcState::kBlocked: return "blocked";
    case ProcState::kFrozen: return "frozen";
    case ProcState::kZombie: return "zombie";
    case ProcState::kDead: return "dead";
  }
  return "?";
}

ProcTable::ProcTable(kern::Host& host) : host_(host), self_(host.id()) {
  trace::Registry& tr = host_.cluster().sim().trace();
  c_spawns_ = &tr.counter("proc.process.spawned", self_);
  c_forks_ = &tr.counter("proc.process.forked", self_);
  c_execs_ = &tr.counter("proc.process.execed", self_);
  c_exits_ = &tr.counter("proc.process.exited", self_);
  c_syscalls_ = &tr.counter("proc.syscall.entered", self_);
  c_forwarded_ = &tr.counter("proc.syscall.forwarded_home", self_);
  c_peer_kills_ = &tr.counter("proc.process.killed_home_crash", self_);
  c_foreign_cpu_us_ = &tr.counter("proc.cpu.foreign_us", self_);
}

const ProcTable::Stats& ProcTable::stats() const {
  stats_view_.spawns = c_spawns_->value();
  stats_view_.forks = c_forks_->value();
  stats_view_.execs = c_execs_->value();
  stats_view_.exits = c_exits_->value();
  stats_view_.syscalls = c_syscalls_->value();
  stats_view_.forwarded_calls = c_forwarded_->value();
  return stats_view_;
}

void ProcTable::register_services() {
  host_.rpc().register_service(
      ServiceId::kProc,
      [this](HostId src, const Request& req, std::function<void(Reply)> r) {
        handle_proc_rpc(src, req, std::move(r));
      });
}

// ---------------------------------------------------------------------------
// Creation / lookup
// ---------------------------------------------------------------------------

void ProcTable::spawn(const std::string& exe_path,
                      std::vector<std::string> args, SpawnCb cb) {
  const ProgramImage* image = host_.cluster().find_program(exe_path);
  if (image == nullptr) return cb({Err::kNoEnt, "no such program"});

  const Pid pid = make_pid(self_, next_seq_++);
  HomeRecord rec;
  rec.pid = pid;
  rec.current = self_;
  home_records_.emplace(pid, std::move(rec));

  auto pcb = std::make_shared<Pcb>();
  pcb->pid = pid;
  pcb->ppid = kInvalidPid;
  pcb->home = self_;
  pcb->current = self_;
  pcb->exe_path = exe_path;
  pcb->args = std::move(args);
  pcb->spawned_at = host_.cluster().sim().now();
  pcb->view.pid = pid;

  host_.vm().create_space(
      exe_path, image->code_pages, image->heap_pages, image->stack_pages,
      [this, pcb, image, cb = std::move(cb)](util::Result<vm::SpacePtr> r) {
        if (!r.is_ok()) {
          home_records_.erase(pcb->pid);
          return cb(r.status());
        }
        pcb->space = *r;
        pcb->program = image->factory(pcb->args);
        procs_[pcb->pid] = pcb;
        c_spawns_->inc();
        if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
          tr.instant("proc", "spawn", self_,
                     static_cast<std::int64_t>(pcb->pid),
                     {{"exe", pcb->exe_path}});
        continue_process(pcb);
        cb(pcb->pid);
      });
}

void ProcTable::notify_on_exit(Pid pid, std::function<void(int)> cb) {
  auto it = home_records_.find(pid);
  SPRITE_CHECK_MSG(it != home_records_.end(),
                   "notify_on_exit must run on the pid's home host");
  if (!it->second.alive) {
    const int status = it->second.exit_status;
    host_.cluster().sim().after(Time::zero(),
                                [cb = std::move(cb), status] { cb(status); });
    return;
  }
  it->second.observers.push_back(std::move(cb));
}

PcbPtr ProcTable::find(Pid pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second;
}

std::vector<PcbPtr> ProcTable::local_processes() const {
  std::vector<PcbPtr> out;
  for (const auto& [pid, p] : procs_) out.push_back(p);
  return out;
}

std::vector<PcbPtr> ProcTable::foreign_processes() const {
  std::vector<PcbPtr> out;
  for (const auto& [pid, p] : procs_)
    if (p->foreign()) out.push_back(p);
  return out;
}

bool ProcTable::home_record_alive(Pid pid) const {
  auto it = home_records_.find(pid);
  return it != home_records_.end() && it->second.alive;
}

sim::HostId ProcTable::home_record_location(Pid pid) const {
  auto it = home_records_.find(pid);
  return it == home_records_.end() ? sim::kInvalidHost : it->second.current;
}

void ProcTable::set_home_record_location(Pid pid, HostId where) {
  auto it = home_records_.find(pid);
  if (it != home_records_.end()) it->second.current = where;
}

std::int64_t ProcTable::home_record_incarnation(Pid pid) const {
  auto it = home_records_.find(pid);
  return it == home_records_.end() ? 0 : it->second.incarnation;
}

util::Result<std::int64_t> ProcTable::bump_incarnation(Pid pid) {
  auto it = home_records_.find(pid);
  if (it == home_records_.end() || !it->second.alive)
    return {Err::kSrch, "no live home record to reincarnate"};
  return ++it->second.incarnation;
}

bool ProcTable::owns(const PcbPtr& pcb) const {
  auto it = procs_.find(pcb->pid);
  return it != procs_.end() && it->second == pcb && pcb->current == self_;
}

// ---------------------------------------------------------------------------
// Dispatch loop
// ---------------------------------------------------------------------------

void ProcTable::resume(const PcbPtr& pcb) { continue_process(pcb); }

void ProcTable::continue_process(const PcbPtr& pcb) {
  if (!owns(pcb)) return;
  if (pcb->state == ProcState::kDead || pcb->state == ProcState::kZombie)
    return;

  // Migration freeze takes priority: the process is at a safe point now.
  if (pcb->freeze_waiter) {
    pcb->state = ProcState::kFrozen;
    auto waiter = std::move(pcb->freeze_waiter);
    pcb->freeze_waiter = nullptr;
    waiter();
    return;
  }
  if (pcb->kill_pending) {
    do_exit(pcb, 128 + pcb->kill_sig);
    return;
  }

  pcb->state = ProcState::kRunnable;
  if (pcb->program == nullptr) {
    LOG_ERROR("proc", "host%d pid=%lu exe=%s home=%d current=%d",
               static_cast<int>(self_), static_cast<unsigned long>(pcb->pid),
               pcb->exe_path.c_str(), static_cast<int>(pcb->home),
               static_cast<int>(pcb->current));
  }
  SPRITE_CHECK_MSG(pcb->program != nullptr, "runnable process has no image");
  Action action = pcb->program->next(pcb->view);
  pcb->view.clear_result();
  dispatch(pcb, std::move(action));
}

void ProcTable::finish_action(const PcbPtr& pcb) {
  if (!owns(pcb)) return;
  continue_process(pcb);
}

void ProcTable::syscall_enter(const PcbPtr& pcb, std::function<void()> fn) {
  c_syscalls_->inc();
  pcb->state = ProcState::kBlocked;
  host_.cpu().submit(JobClass::kKernel, host_.cluster().costs().syscall_cpu,
                     std::move(fn));
}

void ProcTable::dispatch(const PcbPtr& pcb, Action action) {
  const Pid pid = pcb->pid;
  std::visit(
      [&](auto&& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, Compute>) {
          pcb->remaining_compute = a.cpu;
          pcb->cpu_job = host_.cpu().submit(
              JobClass::kUser, a.cpu, [this, pid, burst = a.cpu] {
                auto p = find(pid);
                if (!p) return;
                p->cpu_job = sim::kInvalidCpuJob;
                p->remaining_compute = Time::zero();
                p->cpu_used += burst;
                if (p->foreign()) c_foreign_cpu_us_->inc(burst.us());
                finish_action(p);
              });
        } else if constexpr (std::is_same_v<T, Touch>) {
          pcb->state = ProcState::kBlocked;
          if (!pcb->space) {
            pcb->view.status = Status(Err::kInval, "no address space");
            finish_action(pcb);
            return;
          }
          host_.vm().touch(pcb->space, a.seg, a.first, a.count, a.write,
                           [this, pid](Status s) {
                             auto p = find(pid);
                             if (!p) return;
                             p->view.status = s;
                             finish_action(p);
                           });
        } else if constexpr (std::is_same_v<T, Pause>) {
          pcb->state = ProcState::kBlocked;
          pcb->paused = true;
          pcb->pause_deadline = host_.cluster().sim().now() + a.duration;
          pcb->pause_remaining = a.duration;
          pcb->pause_event = host_.cluster().sim().after(
              a.duration, [this, pid] {
                auto p = find(pid);
                if (!p) return;
                p->paused = false;
                p->pause_remaining = Time::zero();
                finish_action(p);
              });
        } else if constexpr (std::is_same_v<T, SysOpen>) {
          if (pcb->forward_file_calls && pcb->foreign()) {
            auto req = std::make_shared<FileCallReq>();
            req->op = FileCallOp::kOpen;
            req->path = a.path;
            req->flags = a.flags;
            syscall_enter(pcb, [this, pcb, req] { forward_file_call(pcb, req); });
            return;
          }
          syscall_enter(pcb, [this, pcb, a] { do_open(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysClose>) {
          if (pcb->forward_file_calls && pcb->foreign()) {
            auto req = std::make_shared<FileCallReq>();
            req->op = FileCallOp::kClose;
            req->fd = a.fd;
            syscall_enter(pcb, [this, pcb, req] { forward_file_call(pcb, req); });
            return;
          }
          syscall_enter(pcb, [this, pcb, a] { do_close(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysRead>) {
          if (pcb->forward_file_calls && pcb->foreign()) {
            auto req = std::make_shared<FileCallReq>();
            req->op = FileCallOp::kRead;
            req->fd = a.fd;
            req->len = a.len;
            syscall_enter(pcb, [this, pcb, req] { forward_file_call(pcb, req); });
            return;
          }
          syscall_enter(pcb, [this, pcb, a] { do_read(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysWrite>) {
          if (pcb->forward_file_calls && pcb->foreign()) {
            auto req = std::make_shared<FileCallReq>();
            req->op = FileCallOp::kWrite;
            req->fd = a.fd;
            req->data = a.data;
            req->len = a.len;
            syscall_enter(pcb, [this, pcb, req] { forward_file_call(pcb, req); });
            return;
          }
          syscall_enter(pcb, [this, pcb, a] { do_write(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysSeek>) {
          if (pcb->forward_file_calls && pcb->foreign()) {
            auto req = std::make_shared<FileCallReq>();
            req->op = FileCallOp::kSeek;
            req->fd = a.fd;
            req->offset = a.offset;
            syscall_enter(pcb, [this, pcb, req] { forward_file_call(pcb, req); });
            return;
          }
          syscall_enter(pcb, [this, pcb, a] { do_seek(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysFsync>) {
          if (pcb->forward_file_calls && pcb->foreign()) {
            auto req = std::make_shared<FileCallReq>();
            req->op = FileCallOp::kFsync;
            req->fd = a.fd;
            syscall_enter(pcb, [this, pcb, req] { forward_file_call(pcb, req); });
            return;
          }
          syscall_enter(pcb, [this, pcb, a] { do_fsync(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysDup>) {
          syscall_enter(pcb, [this, pcb, a] { do_dup(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysFtruncate>) {
          syscall_enter(pcb, [this, pcb, a] { do_ftruncate(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysUnlink>) {
          syscall_enter(pcb, [this, pcb, a] { do_unlink(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysMkdir>) {
          syscall_enter(pcb, [this, pcb, a] { do_mkdir(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysStat>) {
          syscall_enter(pcb, [this, pcb, a] { do_stat(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysPdevCall>) {
          syscall_enter(pcb, [this, pcb, a] { do_pdev_call(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysFork>) {
          syscall_enter(pcb, [this, pcb] { do_fork(pcb); });
        } else if constexpr (std::is_same_v<T, SysPipe>) {
          syscall_enter(pcb, [this, pcb] { do_pipe(pcb); });
        } else if constexpr (std::is_same_v<T, SysExec>) {
          syscall_enter(pcb, [this, pcb, a] { do_exec(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysExit>) {
          syscall_enter(pcb, [this, pcb, a] { do_exit(pcb, a.status); });
        } else if constexpr (std::is_same_v<T, SysWait>) {
          syscall_enter(pcb, [this, pcb] { do_wait(pcb); });
        } else if constexpr (std::is_same_v<T, SysGetPid>) {
          syscall_enter(pcb, [this, pcb] {
            pcb->view.rv = static_cast<std::int64_t>(pcb->pid);
            finish_action(pcb);
          });
        } else if constexpr (std::is_same_v<T, SysGetPPid>) {
          syscall_enter(pcb, [this, pcb] {
            pcb->view.rv = static_cast<std::int64_t>(pcb->ppid);
            finish_action(pcb);
          });
        } else if constexpr (std::is_same_v<T, SysGetTime>) {
          syscall_enter(pcb, [this, pcb] {
            pcb->view.rv = host_.cluster().sim().now().us();
            finish_action(pcb);
          });
        } else if constexpr (std::is_same_v<T, SysGetHostName>) {
          syscall_enter(pcb, [this, pcb] { do_get_host_name(pcb); });
        } else if constexpr (std::is_same_v<T, SysKill>) {
          syscall_enter(pcb, [this, pcb, a] { do_kill(pcb, a); });
        } else if constexpr (std::is_same_v<T, SysMigrateSelf>) {
          syscall_enter(pcb, [this, pcb, a] { do_migrate_self(pcb, a); });
        } else {
          SPRITE_UNREACHABLE("unhandled action type");
        }
      },
      action);
}

// ---------------------------------------------------------------------------
// File kernel calls (transferred-state handling)
// ---------------------------------------------------------------------------

void ProcTable::do_open(const PcbPtr& pcb, const SysOpen& a) {
  const Pid pid = pcb->pid;
  host_.fs().open(a.path, a.flags,
                  [this, pid](util::Result<fs::StreamPtr> r) {
                    auto p = find(pid);
                    if (!p) {
                      // Process vanished mid-open: release the stream.
                      if (r.is_ok()) host_.fs().close(*r, [](Status) {});
                      return;
                    }
                    if (!r.is_ok()) {
                      p->view.status = r.status();
                    } else {
                      const int fd = p->next_fd++;
                      p->fds[fd] = *r;
                      p->view.rv = fd;
                    }
                    finish_action(p);
                  });
}

void ProcTable::do_close(const PcbPtr& pcb, const SysClose& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "close");
    return finish_action(pcb);
  }
  fs::StreamPtr s = it->second;
  pcb->fds.erase(it);
  if (--s->local_refs > 0) {
    // Another descriptor on this host still references the stream.
    return finish_action(pcb);
  }
  const Pid pid = pcb->pid;
  host_.fs().close(s, [this, pid](Status st) {
    auto p = find(pid);
    if (!p) return;
    p->view.status = st;
    finish_action(p);
  });
}

void ProcTable::do_read(const PcbPtr& pcb, const SysRead& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "read");
    return finish_action(pcb);
  }
  const Pid pid = pcb->pid;
  host_.fs().read(it->second, a.len, [this, pid](util::Result<fs::Bytes> r) {
    auto p = find(pid);
    if (!p) return;
    if (!r.is_ok()) {
      p->view.status = r.status();
    } else {
      p->view.rv = static_cast<std::int64_t>(r->size());
      p->view.data = std::move(*r);
    }
    finish_action(p);
  });
}

void ProcTable::do_write(const PcbPtr& pcb, const SysWrite& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "write");
    return finish_action(pcb);
  }
  fs::Bytes data = a.data;
  if (data.empty() && a.len > 0)
    data.assign(static_cast<std::size_t>(a.len), 0);
  const Pid pid = pcb->pid;
  host_.fs().write(it->second, std::move(data),
                   [this, pid](util::Result<std::int64_t> r) {
                     auto p = find(pid);
                     if (!p) return;
                     if (!r.is_ok()) {
                       p->view.status = r.status();
                     } else {
                       p->view.rv = *r;
                     }
                     finish_action(p);
                   });
}

void ProcTable::do_seek(const PcbPtr& pcb, const SysSeek& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "seek");
  } else {
    pcb->view.status = host_.fs().seek(it->second, a.offset);
    pcb->view.rv = a.offset;
  }
  finish_action(pcb);
}

void ProcTable::do_fsync(const PcbPtr& pcb, const SysFsync& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "fsync");
    return finish_action(pcb);
  }
  const Pid pid = pcb->pid;
  host_.fs().fsync(it->second, [this, pid](Status st) {
    auto p = find(pid);
    if (!p) return;
    p->view.status = st;
    finish_action(p);
  });
}

void ProcTable::do_dup(const PcbPtr& pcb, const SysDup& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "dup");
    return finish_action(pcb);
  }
  const int nfd = pcb->next_fd++;
  pcb->fds[nfd] = it->second;
  ++it->second->local_refs;  // same Stream, same access position
  pcb->view.rv = nfd;
  finish_action(pcb);
}

void ProcTable::do_ftruncate(const PcbPtr& pcb, const SysFtruncate& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "ftruncate");
    return finish_action(pcb);
  }
  const Pid pid = pcb->pid;
  host_.fs().ftruncate(it->second, a.size, [this, pid](Status st) {
    auto p = find(pid);
    if (!p) return;
    p->view.status = st;
    finish_action(p);
  });
}

void ProcTable::do_unlink(const PcbPtr& pcb, const SysUnlink& a) {
  const Pid pid = pcb->pid;
  host_.fs().unlink(a.path, [this, pid](Status st) {
    auto p = find(pid);
    if (!p) return;
    p->view.status = st;
    finish_action(p);
  });
}

void ProcTable::do_mkdir(const PcbPtr& pcb, const SysMkdir& a) {
  const Pid pid = pcb->pid;
  host_.fs().mkdir(a.path, [this, pid](Status st) {
    auto p = find(pid);
    if (!p) return;
    p->view.status = st;
    finish_action(p);
  });
}

void ProcTable::do_stat(const PcbPtr& pcb, const SysStat& a) {
  const Pid pid = pcb->pid;
  host_.fs().stat(a.path, [this, pid](util::Result<fs::StatResult> r) {
    auto p = find(pid);
    if (!p) return;
    if (!r.is_ok()) {
      p->view.status = r.status();
    } else {
      p->view.rv = r->size;
    }
    finish_action(p);
  });
}

void ProcTable::do_pdev_call(const PcbPtr& pcb, const SysPdevCall& a) {
  auto it = pcb->fds.find(a.fd);
  if (it == pcb->fds.end()) {
    pcb->view.status = Status(Err::kBadF, "pdev_call");
    return finish_action(pcb);
  }
  const Pid pid = pcb->pid;
  host_.fs().pdev_call(it->second, a.request,
                       [this, pid](util::Result<fs::Bytes> r) {
                         auto p = find(pid);
                         if (!p) return;
                         if (!r.is_ok()) {
                           p->view.status = r.status();
                         } else {
                           p->view.data = std::move(*r);
                           p->view.rv =
                               static_cast<std::int64_t>(p->view.data.size());
                         }
                         finish_action(p);
                       });
}

// ---------------------------------------------------------------------------
// Process-family kernel calls
// ---------------------------------------------------------------------------

void ProcTable::do_fork(const PcbPtr& pcb) {
  if (pcb->home != self_) c_forwarded_->inc();
  auto body = std::make_shared<ForkChildReq>();
  body->parent = pcb->pid;
  body->child_host = self_;
  const Pid parent_pid = pcb->pid;
  host_.rpc().call(
      pcb->home, ServiceId::kProc, static_cast<int>(ProcOp::kForkChild), body,
      [this, parent_pid](util::Result<Reply> r) {
        auto parent = find(parent_pid);
        if (!parent) return;
        if (!r.is_ok() || !r->status.is_ok()) {
          parent->view.status =
              r.is_ok() ? r->status : r.status();
          return finish_action(parent);
        }
        auto rep = rpc::body_cast<ForkChildRep>(r->body);
        SPRITE_CHECK(rep != nullptr);
        const Pid child_pid = rep->child;

        auto child = std::make_shared<Pcb>();
        child->pid = child_pid;
        child->ppid = parent->pid;
        child->spawned_at = host_.cluster().sim().now();
        child->home = parent->home;  // children are born to the same home
        child->current = self_;
        child->exe_path = parent->exe_path;
        child->args = parent->args;
        child->program = parent->program->clone();
        child->view = parent->view;
        child->view.clear_result();
        child->view.pid = child_pid;
        child->view.ppid = parent->pid;
        child->view.is_child = true;
        child->next_fd = parent->next_fd;
        for (const auto& [fd, s] : parent->fds) {
          child->fds[fd] = s;
          ++s->local_refs;  // descriptor shared on this host
        }

        // The child gets its own address space sized like the parent's.
        // (Content copying is not modelled: fork+exec dominates in Sprite,
        // and the fork CPU charge covers kernel work. See DESIGN.md.)
        const auto& cs = parent->space;
        host_.cpu().submit(
            JobClass::kKernel, host_.cluster().costs().fork_cpu,
            [this, parent_pid, child, code = cs->segment(vm::Segment::kCode).pages,
             heap = cs->segment(vm::Segment::kHeap).pages,
             stack = cs->segment(vm::Segment::kStack).pages] {
              host_.vm().create_space(
                  child->exe_path, code, heap, stack,
                  [this, parent_pid, child](util::Result<vm::SpacePtr> r) {
                    auto parent = find(parent_pid);
                    if (!r.is_ok()) {
                      if (parent) {
                        parent->view.status = r.status();
                        finish_action(parent);
                      }
                      return;
                    }
                    child->space = *r;
                    procs_[child->pid] = child;
                    c_forks_->inc();
                    if (parent) {
                      parent->view.rv =
                          static_cast<std::int64_t>(child->pid);
                      finish_action(parent);
                    }
                    continue_process(child);
                  });
            });
      });
}

void ProcTable::do_pipe(const PcbPtr& pcb) {
  const Pid pid = pcb->pid;
  host_.fs().create_pipe(
      [this, pid](util::Result<std::pair<fs::StreamPtr, fs::StreamPtr>> r) {
        auto p = find(pid);
        if (!p) return;
        if (!r.is_ok()) {
          p->view.status = r.status();
          return finish_action(p);
        }
        const int rfd = p->next_fd++;
        const int wfd = p->next_fd++;
        p->fds[rfd] = r->first;
        p->fds[wfd] = r->second;
        p->view.rv = rfd;
        p->view.aux = wfd;
        finish_action(p);
      });
}

void ProcTable::do_exec(const PcbPtr& pcb, const SysExec& a) {
  const ProgramImage* image = host_.cluster().find_program(a.path);
  if (image == nullptr) {
    pcb->view.status = Status(Err::kNoEnt, a.path);
    return finish_action(pcb);
  }

  // Exec-time migration: the new image is created on the target host, so no
  // virtual memory transfers at all — the cheap case pmake exploits.
  if (pcb->migrate_on_exec && pcb->migrate_target != sim::kInvalidHost &&
      pcb->migrate_target != self_ && migrator_ != nullptr) {
    const HostId target = pcb->migrate_target;
    pcb->migrate_on_exec = false;
    pcb->migrate_target = sim::kInvalidHost;
    pcb->exe_path = a.path;
    pcb->args = a.args;
    vm::SpacePtr old_space = std::move(pcb->space);
    pcb->space = nullptr;
    pcb->program = nullptr;  // rebuilt from the image on the target
    pcb->view.clear_result();
    pcb->migrate_syscall_pending = true;
    const Pid pid = pcb->pid;
    auto start_migration = [this, pid, target] {
      auto p = find(pid);
      if (!p) return;
      migrator_->migrate(p, target, [this, pid](Status s) {
        if (s.is_ok()) return;  // now running on the target
        // Migration failed: fall back to executing locally.
        auto p = find(pid);
        if (!p) return;
        p->migrate_syscall_pending = false;
        const ProgramImage* image = host_.cluster().find_program(p->exe_path);
        SPRITE_CHECK(image != nullptr);
        host_.vm().create_space(
            p->exe_path, image->code_pages, image->heap_pages,
            image->stack_pages, [this, pid](util::Result<vm::SpacePtr> r) {
              auto p = find(pid);
              if (!p || !r.is_ok()) return;
              const ProgramImage* image =
                  host_.cluster().find_program(p->exe_path);
              p->space = *r;
              p->program = image->factory(p->args);
              p->state = ProcState::kRunnable;
              c_execs_->inc();
              continue_process(p);
            });
      });
    };
    if (old_space) {
      host_.vm().destroy_space(std::move(old_space),
                               [start_migration](Status) { start_migration(); });
    } else {
      start_migration();
    }
    return;
  }

  // Plain local exec.
  const Pid pid = pcb->pid;
  pcb->exe_path = a.path;
  pcb->args = a.args;
  vm::SpacePtr old_space = std::move(pcb->space);
  pcb->space = nullptr;
  auto build = [this, pid, image] {
    auto p = find(pid);
    if (!p) return;
    host_.cpu().submit(
        JobClass::kKernel, host_.cluster().costs().exec_cpu, [this, pid, image] {
          auto p = find(pid);
          if (!p) return;
          host_.vm().create_space(
              p->exe_path, image->code_pages, image->heap_pages,
              image->stack_pages,
              [this, pid, image](util::Result<vm::SpacePtr> r) {
                auto p = find(pid);
                if (!p) return;
                if (!r.is_ok()) {
                  p->view.status = r.status();
                  return finish_action(p);
                }
                p->space = *r;
                p->program = image->factory(p->args);
                p->view.clear_result();
                c_execs_->inc();
                continue_process(p);
              });
        });
  };
  if (old_space) {
    host_.vm().destroy_space(std::move(old_space), [build](Status) { build(); });
  } else {
    build();
  }
}

void ProcTable::do_exit(const PcbPtr& pcb, int status) {
  if (pcb->state == ProcState::kZombie || pcb->state == ProcState::kDead)
    return;
  pcb->state = ProcState::kZombie;
  pcb->kill_pending = false;
  c_exits_->inc();
  if (pcb->home != self_) c_forwarded_->inc();
  if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
    tr.instant("proc", "exit", self_, static_cast<std::int64_t>(pcb->pid),
               {{"status", std::to_string(status)}});

  // Release descriptors (server refs drop when the last local ref closes).
  std::vector<fs::StreamPtr> to_close;
  for (auto& [fd, s] : pcb->fds) {
    if (--s->local_refs == 0) to_close.push_back(s);
  }
  pcb->fds.clear();
  for (auto& s : to_close) host_.fs().close(s, [](Status) {});

  const Pid pid = pcb->pid;
  auto finish_exit = [this, pid, status] {
    auto it = procs_.find(pid);
    PcbPtr p = it == procs_.end() ? nullptr : it->second;
    if (p) {
      p->state = ProcState::kDead;
      procs_.erase(it);
    }
    const HostId home = pid_home(pid);
    if (home == self_) {
      home_exit(pid, status);
    } else {
      auto body = std::make_shared<ExitNotifyReq>();
      body->pid = pid;
      body->status = status;
      host_.rpc().call(home, ServiceId::kProc,
                       static_cast<int>(ProcOp::kExitNotify), body,
                       [](util::Result<Reply>) {});
    }
  };

  if (pcb->space) {
    vm::SpacePtr space = std::move(pcb->space);
    pcb->space = nullptr;
    host_.vm().destroy_space(std::move(space),
                             [finish_exit](Status) { finish_exit(); });
  } else {
    finish_exit();
  }
}

void ProcTable::do_wait(const PcbPtr& pcb) {
  const Pid pid = pcb->pid;
  auto apply = [this, pid](const WaitRep& rep) {
    auto p = find(pid);
    if (!p) return;
    if (rep.found) {
      p->view.rv = static_cast<std::int64_t>(rep.child);
      p->view.aux = rep.status;
      finish_action(p);
    } else if (rep.no_children) {
      p->view.status = Status(Err::kChild, "no children");
      finish_action(p);
    } else {
      p->blocked_in_wait = true;
      p->state = ProcState::kBlocked;
      // Parked until a WaitNotify arrives (possibly on another host if the
      // process migrates while waiting).
    }
  };

  if (pcb->home == self_) {
    apply(home_wait(pcb->pid, self_));
    return;
  }
  c_forwarded_->inc();
  auto body = std::make_shared<WaitReq>();
  body->parent = pcb->pid;
  body->waiter_host = self_;
  host_.rpc().call(pcb->home, ServiceId::kProc,
                   static_cast<int>(ProcOp::kWait), body,
                   [this, pid, apply](util::Result<Reply> r) {
                     auto p = find(pid);
                     if (!p) return;
                     if (!r.is_ok() || !r->status.is_ok()) {
                       p->view.status = r.is_ok() ? r->status : r.status();
                       return finish_action(p);
                     }
                     auto rep = rpc::body_cast<WaitRep>(r->body);
                     SPRITE_CHECK(rep != nullptr);
                     apply(*rep);
                   });
}

void ProcTable::do_kill(const PcbPtr& pcb, const SysKill& a) {
  const HostId target_home = pid_home(a.pid);
  if (target_home != self_) c_forwarded_->inc();
  auto body = std::make_shared<SignalReq>();
  body->pid = a.pid;
  body->sig = a.sig;
  const Pid pid = pcb->pid;
  host_.rpc().call(target_home, ServiceId::kProc,
                   static_cast<int>(ProcOp::kSignal), body,
                   [this, pid](util::Result<Reply> r) {
                     auto p = find(pid);
                     if (!p) return;
                     p->view.status = r.is_ok() ? r->status : r.status();
                     finish_action(p);
                   });
}

void ProcTable::do_get_host_name(const PcbPtr& pcb) {
  if (pcb->home == self_) {
    pcb->view.text = host_.name();
    return finish_action(pcb);
  }
  // Forwarded home: the process must appear to run on its home machine.
  c_forwarded_->inc();
  const Pid pid = pcb->pid;
  host_.rpc().call(pcb->home, ServiceId::kProc,
                   static_cast<int>(ProcOp::kGetHostName), nullptr,
                   [this, pid](util::Result<Reply> r) {
                     auto p = find(pid);
                     if (!p) return;
                     if (!r.is_ok() || !r->status.is_ok()) {
                       p->view.status = r.is_ok() ? r->status : r.status();
                     } else {
                       auto rep = rpc::body_cast<HostNameRep>(r->body);
                       SPRITE_CHECK(rep != nullptr);
                       p->view.text = rep->name;
                     }
                     finish_action(p);
                   });
}

void ProcTable::do_migrate_self(const PcbPtr& pcb, const SysMigrateSelf& a) {
  // Per the dispatch table, the migrate call is forwarded home first: the
  // home machine validates the process and records intent.
  if (pcb->home != self_) c_forwarded_->inc();
  auto body = std::make_shared<MigrateRequestReq>();
  body->pid = pcb->pid;
  body->target = a.target;
  const Pid pid = pcb->pid;
  host_.rpc().call(
      pcb->home, ServiceId::kProc, static_cast<int>(ProcOp::kMigrateRequest),
      body, [this, pid, a](util::Result<Reply> r) {
        auto p = find(pid);
        if (!p) return;
        if (!r.is_ok() || !r->status.is_ok()) {
          p->view.status = r.is_ok() ? r->status : r.status();
          return finish_action(p);
        }
        if (a.at_exec) {
          // Deferred: the coming exec builds the image on the target.
          p->migrate_on_exec = true;
          p->migrate_target = a.target;
          return finish_action(p);
        }
        if (migrator_ == nullptr) {
          p->view.status = Status(Err::kNotSupported, "no migration module");
          return finish_action(p);
        }
        // Immediate migration: this kernel call completes by resuming the
        // process on the target host.
        p->migrate_syscall_pending = true;
        migrator_->migrate(p, a.target, [this, pid](Status s) {
          if (s.is_ok()) return;
          auto p = find(pid);
          if (!p) return;
          p->migrate_syscall_pending = false;
          p->view.status = s;  // the program sees the failure and continues
          p->state = ProcState::kRunnable;
          finish_action(p);
        });
      });
}

// ---------------------------------------------------------------------------
// Migration hooks
// ---------------------------------------------------------------------------

void ProcTable::freeze(const PcbPtr& pcb, std::function<void()> cb) {
  SPRITE_CHECK(owns(pcb));
  if (pcb->state == ProcState::kFrozen) {
    cb();
    return;
  }
  // A process inside the migrate-self kernel call is by definition at a safe
  // point: the call completes on the target.
  if (pcb->migrate_syscall_pending) {
    pcb->migrate_syscall_pending = false;
    pcb->state = ProcState::kFrozen;
    cb();
    return;
  }
  // Computing: preempt and carry the unserved burst. The served fraction
  // was burned HERE — credit it now, or it would vanish from cpu_used (the
  // resumed job on the target only accounts the remainder).
  if (pcb->cpu_job != sim::kInvalidCpuJob) {
    const Time unserved = host_.cpu().cancel(pcb->cpu_job);
    const Time served = pcb->remaining_compute - unserved;
    if (served > Time::zero()) {
      pcb->cpu_used += served;
      if (pcb->foreign()) c_foreign_cpu_us_->inc(served.us());
    }
    pcb->remaining_compute = unserved;
    pcb->cpu_job = sim::kInvalidCpuJob;
    pcb->state = ProcState::kFrozen;
    cb();
    return;
  }
  // Sleeping: cancel the timer and carry the remaining sleep.
  if (pcb->paused) {
    pcb->pause_event.cancel();
    pcb->paused = false;
    const Time now = host_.cluster().sim().now();
    pcb->pause_remaining = pcb->pause_deadline > now
                               ? pcb->pause_deadline - now
                               : Time::zero();
    pcb->state = ProcState::kFrozen;
    cb();
    return;
  }
  // Parked in wait(): safe to freeze; the WaitNotify will chase the process
  // to its new host via the home record.
  if (pcb->blocked_in_wait) {
    pcb->state = ProcState::kFrozen;
    cb();
    return;
  }
  // Mid-kernel-call: freeze at the next action boundary.
  pcb->freeze_waiter = std::move(cb);
}

void ProcTable::remove(Pid pid) {
  procs_.erase(pid);
  if (restarter_) restarter_->note_departed(pid);
}

void ProcTable::home_crash_exit(Pid pid) { home_exit(pid, kHostCrashExitStatus); }

void ProcTable::install_and_resume(const PcbPtr& pcb) {
  pcb->current = self_;
  procs_[pcb->pid] = pcb;
  // Forwarding comparator: back home, the parked descriptor table is
  // reattached and file calls run directly again.
  if (pcb->forward_file_calls && pcb->home == self_)
    restore_parked_streams(pcb);
  if (pcb->blocked_in_wait) {
    pcb->state = ProcState::kBlocked;
    return;  // resumed by WaitNotify
  }
  if (pcb->pause_remaining > Time::zero()) {
    const Pid pid = pcb->pid;
    pcb->state = ProcState::kBlocked;
    pcb->paused = true;
    pcb->pause_deadline =
        host_.cluster().sim().now() + pcb->pause_remaining;
    pcb->pause_event = host_.cluster().sim().after(
        pcb->pause_remaining, [this, pid] {
          auto p = find(pid);
          if (!p) return;
          p->paused = false;
          p->pause_remaining = Time::zero();
          finish_action(p);
        });
    return;
  }
  if (pcb->remaining_compute > Time::zero()) {
    const Pid pid = pcb->pid;
    pcb->state = ProcState::kRunnable;
    pcb->cpu_job = host_.cpu().submit(
        JobClass::kUser, pcb->remaining_compute,
        [this, pid, burst = pcb->remaining_compute] {
          auto p = find(pid);
          if (!p) return;
          p->cpu_job = sim::kInvalidCpuJob;
          p->remaining_compute = Time::zero();
          p->cpu_used += burst;
          if (p->foreign()) c_foreign_cpu_us_->inc(burst.us());
          finish_action(p);
        });
    return;
  }
  pcb->state = ProcState::kRunnable;
  continue_process(pcb);
}

// ---------------------------------------------------------------------------
// Crash support
// ---------------------------------------------------------------------------

void ProcTable::crash_reset() {
  for (auto& [pid, p] : procs_) {
    if (p->paused) p->pause_event.cancel();
    p->freeze_waiter = nullptr;
    p->cpu_job = sim::kInvalidCpuJob;  // the CPU queues are wiped separately
    p->state = ProcState::kDead;
    p->fds.clear();  // stream state dies with the host's FS client
    p->space = nullptr;
  }
  procs_.clear();
  // Home records die too. Foreign processes born here that run elsewhere
  // are reaped by their current host's peer_crashed; waiters for them lived
  // in this kernel and are gone with it.
  home_records_.clear();
  // next_seq_ is deliberately kept: pids allocated after the reboot must
  // not collide with pids that may still be referenced by survivors.
}

void ProcTable::peer_crashed(HostId peer) {
  // Foreign processes whose home machine died: nobody is left that knows
  // their pid, parent, or waiters — reap them silently.
  std::vector<PcbPtr> orphans;
  for (auto& [pid, p] : procs_)
    if (p->home == peer) orphans.push_back(p);
  for (auto& p : orphans) reap_on_peer_crash(p);

  // Home records of processes that were executing on the dead host: they
  // died with it. The checkpoint layer gets first claim — a restart from a
  // checkpoint image keeps the record alive under a new incarnation.
  // Otherwise home_exit unblocks waiters and fires exit observers with the
  // crash status.
  std::vector<Pid> died;
  for (auto& [pid, rec] : home_records_)
    if (rec.alive && rec.current == peer) died.push_back(pid);
  for (Pid pid : died) {
    if (restarter_ && restarter_->try_restart(pid, peer)) continue;
    home_exit(pid, kHostCrashExitStatus);
  }
}

void ProcTable::collect_peer_interest(std::vector<sim::HostId>& out) const {
  for (const auto& [pid, p] : procs_)
    if (p->home != self_) out.push_back(p->home);
  for (const auto& [pid, rec] : home_records_)
    if (rec.alive && rec.current != self_) out.push_back(rec.current);
}

void ProcTable::reap_stale_incarnation(Pid pid) {
  auto p = find(pid);
  if (!p) return;
  if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
    tr.instant("proc", "killed: stale incarnation", self_,
               static_cast<std::int64_t>(pid));
  // Same teardown as losing the home machine: release local resources and
  // do NOT notify the home — its record already belongs to the restarted
  // incarnation.
  reap_on_peer_crash(p);
}

void ProcTable::reap_on_peer_crash(const PcbPtr& pcb) {
  if (pcb->state == ProcState::kDead) return;
  // An outgoing migration of this process must abort before the PCB's space
  // and descriptors are torn down underneath its pipeline.
  if (migrator_) migrator_->note_process_reaped(pcb->pid);
  if (pcb->paused) {
    pcb->pause_event.cancel();
    pcb->paused = false;
  }
  if (pcb->cpu_job != sim::kInvalidCpuJob) {
    host_.cpu().cancel(pcb->cpu_job);
    pcb->cpu_job = sim::kInvalidCpuJob;
  }
  pcb->freeze_waiter = nullptr;
  pcb->blocked_in_wait = false;
  pcb->state = ProcState::kDead;
  c_peer_kills_->inc();
  if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
    tr.instant("proc", "killed: home crashed", self_,
               static_cast<std::int64_t>(pcb->pid));
  // Release descriptors: streams on surviving servers are closed properly so
  // their refcounts stay balanced; closes against the dead server fail
  // harmlessly after the RPC layer gives up.
  std::vector<fs::StreamPtr> to_close;
  for (auto& [fd, s] : pcb->fds)
    if (--s->local_refs == 0) to_close.push_back(s);
  pcb->fds.clear();
  for (auto& s : to_close) host_.fs().close(s, [](Status) {});
  if (pcb->space) {
    vm::SpacePtr space = std::move(pcb->space);
    host_.vm().destroy_space(std::move(space), [](Status) {});
  }
  procs_.erase(pcb->pid);
}

// ---------------------------------------------------------------------------
// Home-record operations
// ---------------------------------------------------------------------------

void ProcTable::forward_file_call(const PcbPtr& pcb,
                                  std::shared_ptr<FileCallReq> req) {
  c_forwarded_->inc();
  req->pid = pcb->pid;
  const Pid pid = pcb->pid;
  host_.rpc().call(
      pcb->home, ServiceId::kProc, static_cast<int>(ProcOp::kFileCall), req,
      [this, pid](util::Result<Reply> r) {
        auto p = find(pid);
        if (!p) return;
        if (!r.is_ok() || !r->status.is_ok()) {
          p->view.status = r.is_ok() ? r->status : r.status();
          return finish_action(p);
        }
        // Success replies without a body (close, fsync) carry no result.
        auto rep = rpc::body_cast<FileCallRep>(r->body);
        if (rep != nullptr) {
          p->view.rv = rep->rv;
          p->view.data = rep->data;
        }
        finish_action(p);
      });
}

void ProcTable::home_file_call(const FileCallReq& req,
                               std::function<void(Reply)> respond) {
  auto it = home_records_.find(req.pid);
  if (it == home_records_.end() || !it->second.alive)
    return respond(Reply{Status(Err::kSrch, "file call for dead pid"),
                         nullptr});
  HomeRecord& rec = it->second;
  const Pid pid = req.pid;

  auto reply_rv = [respond](std::int64_t rv) {
    auto rep = std::make_shared<FileCallRep>();
    rep->rv = rv;
    respond(Reply{Status::ok(), rep});
  };

  switch (req.op) {
    case FileCallOp::kOpen: {
      host_.fs().open(req.path, req.flags,
                      [this, pid, respond = std::move(respond)](
                          util::Result<fs::StreamPtr> r) {
                        if (!r.is_ok())
                          return respond(Reply{r.status(), nullptr});
                        auto it = home_records_.find(pid);
                        if (it == home_records_.end()) {
                          host_.fs().close(*r, [](Status) {});
                          return respond(
                              Reply{Status(Err::kSrch, "pid gone"), nullptr});
                        }
                        const int fd = it->second.stub_next_fd++;
                        it->second.resident_streams[fd] = *r;
                        auto rep = std::make_shared<FileCallRep>();
                        rep->rv = fd;
                        respond(Reply{Status::ok(), rep});
                      });
      return;
    }
    case FileCallOp::kClose: {
      auto sit = rec.resident_streams.find(req.fd);
      if (sit == rec.resident_streams.end())
        return respond(Reply{Status(Err::kBadF, "fwd close"), nullptr});
      fs::StreamPtr s = sit->second;
      rec.resident_streams.erase(sit);
      if (--s->local_refs > 0) return reply_rv(0);
      host_.fs().close(s, [respond = std::move(respond)](Status st) {
        respond(Reply{st, nullptr});
      });
      return;
    }
    case FileCallOp::kRead: {
      auto sit = rec.resident_streams.find(req.fd);
      if (sit == rec.resident_streams.end())
        return respond(Reply{Status(Err::kBadF, "fwd read"), nullptr});
      host_.fs().read(sit->second, req.len,
                      [respond = std::move(respond)](
                          util::Result<fs::Bytes> r) {
                        if (!r.is_ok())
                          return respond(Reply{r.status(), nullptr});
                        auto rep = std::make_shared<FileCallRep>();
                        rep->rv = static_cast<std::int64_t>(r->size());
                        rep->data = std::move(*r);
                        respond(Reply{Status::ok(), rep});
                      });
      return;
    }
    case FileCallOp::kWrite: {
      auto sit = rec.resident_streams.find(req.fd);
      if (sit == rec.resident_streams.end())
        return respond(Reply{Status(Err::kBadF, "fwd write"), nullptr});
      fs::Bytes data = req.data;
      if (data.empty() && req.len > 0)
        data.assign(static_cast<std::size_t>(req.len), 0);
      host_.fs().write(sit->second, std::move(data),
                       [reply_rv, respond](util::Result<std::int64_t> r) {
                         if (!r.is_ok())
                           return respond(Reply{r.status(), nullptr});
                         reply_rv(*r);
                       });
      return;
    }
    case FileCallOp::kSeek: {
      auto sit = rec.resident_streams.find(req.fd);
      if (sit == rec.resident_streams.end())
        return respond(Reply{Status(Err::kBadF, "fwd seek"), nullptr});
      const Status st = host_.fs().seek(sit->second, req.offset);
      if (!st.is_ok()) return respond(Reply{st, nullptr});
      return reply_rv(req.offset);
    }
    case FileCallOp::kFsync: {
      auto sit = rec.resident_streams.find(req.fd);
      if (sit == rec.resident_streams.end())
        return respond(Reply{Status(Err::kBadF, "fwd fsync"), nullptr});
      host_.fs().fsync(sit->second,
                       [respond = std::move(respond)](Status st) {
                         respond(Reply{st, nullptr});
                       });
      return;
    }
  }
  respond(Reply{Status(Err::kNotSupported, "bad file call"), nullptr});
}

void ProcTable::park_streams_at_home(const PcbPtr& pcb) {
  SPRITE_CHECK_MSG(pcb->home == self_, "parking requires the home host");
  auto it = home_records_.find(pcb->pid);
  SPRITE_CHECK(it != home_records_.end());
  it->second.resident_streams = std::move(pcb->fds);
  pcb->fds.clear();
  it->second.stub_next_fd = pcb->next_fd;
}

void ProcTable::restore_parked_streams(const PcbPtr& pcb) {
  SPRITE_CHECK_MSG(pcb->home == self_, "restore requires the home host");
  auto it = home_records_.find(pcb->pid);
  if (it == home_records_.end()) return;
  pcb->fds = std::move(it->second.resident_streams);
  it->second.resident_streams.clear();
  pcb->next_fd = std::max(pcb->next_fd, it->second.stub_next_fd);
  pcb->forward_file_calls = false;
}

Pid ProcTable::home_fork_child(Pid parent, HostId child_host) {
  const Pid child = make_pid(self_, next_seq_++);
  HomeRecord rec;
  rec.pid = child;
  rec.parent = parent;
  rec.current = child_host;
  home_records_.emplace(child, std::move(rec));
  auto pit = home_records_.find(parent);
  if (pit != home_records_.end()) pit->second.children.push_back(child);
  return child;
}

void ProcTable::home_exit(Pid pid, int status) {
  auto it = home_records_.find(pid);
  if (it == home_records_.end()) return;
  HomeRecord& rec = it->second;
  if (!rec.alive) return;
  rec.alive = false;
  rec.current = sim::kInvalidHost;
  rec.exit_status = status;
  // The checkpoint layer drops any chain it kept for this pid.
  if (restarter_) restarter_->note_home_exit(pid);
  // Release any streams parked here by the forwarding comparator.
  for (auto& [fd, s] : rec.resident_streams) {
    if (--s->local_refs == 0) host_.fs().close(s, [](Status) {});
  }
  rec.resident_streams.clear();
  auto observers = std::move(rec.observers);
  rec.observers.clear();
  for (auto& obs : observers) obs(status);

  // Orphan the children (their eventual exits produce no zombies).
  for (Pid c : rec.children) {
    auto cit = home_records_.find(c);
    if (cit != home_records_.end()) cit->second.parent = kInvalidPid;
  }
  rec.children.clear();

  // Tell the parent.
  const Pid parent = rec.parent;
  if (parent == kInvalidPid) return;
  auto pit = home_records_.find(parent);
  if (pit == home_records_.end() || !pit->second.alive) return;
  HomeRecord& prec = pit->second;
  prec.children.erase(
      std::remove(prec.children.begin(), prec.children.end(), pid),
      prec.children.end());
  if (prec.waiter_registered) {
    prec.waiter_registered = false;
    auto body = std::make_shared<WaitNotifyReq>();
    body->parent = parent;
    body->child = pid;
    body->status = status;
    // Deliver to wherever the parent currently runs.
    host_.rpc().call(prec.current, ServiceId::kProc,
                     static_cast<int>(ProcOp::kWaitNotify), body,
                     [](util::Result<Reply>) {});
  } else {
    prec.zombies.emplace_back(pid, status);
  }
}

WaitRep ProcTable::home_wait(Pid parent, HostId waiter_host) {
  WaitRep rep;
  auto it = home_records_.find(parent);
  if (it == home_records_.end()) {
    rep.no_children = true;
    return rep;
  }
  HomeRecord& rec = it->second;
  if (!rec.zombies.empty()) {
    rep.found = true;
    rep.child = rec.zombies.front().first;
    rep.status = rec.zombies.front().second;
    rec.zombies.pop_front();
    return rep;
  }
  if (rec.children.empty()) {
    rep.no_children = true;
    return rep;
  }
  rec.waiter_registered = true;
  rec.waiter_host = waiter_host;
  return rep;
}

util::Status ProcTable::home_signal(Pid pid, int sig) {
  auto it = home_records_.find(pid);
  if (it == home_records_.end() || !it->second.alive)
    return Status(Err::kSrch, "no such process");
  const HostId where = it->second.current;
  if (where == self_) {
    deliver_signal(pid, sig);
    return Status::ok();
  }
  auto body = std::make_shared<SignalReq>();
  body->pid = pid;
  body->sig = sig;
  host_.rpc().call(where, ServiceId::kProc,
                   static_cast<int>(ProcOp::kSignalDeliver), body,
                   [](util::Result<Reply>) {});
  return Status::ok();
}

void ProcTable::deliver_signal(Pid pid, int sig) {
  auto p = find(pid);
  if (!p) {
    // The process moved between routing and delivery; re-route via home.
    const HostId home = pid_home(pid);
    if (home == self_) return;  // record said here but it is gone: drop
    auto body = std::make_shared<SignalReq>();
    body->pid = pid;
    body->sig = sig;
    host_.rpc().call(home, ServiceId::kProc,
                     static_cast<int>(ProcOp::kSignal), body,
                     [](util::Result<Reply>) {});
    return;
  }
  p->kill_pending = true;
  p->kill_sig = sig;
  if (p->state == ProcState::kFrozen) return;  // handled after migration
  if (p->blocked_in_wait) {
    p->blocked_in_wait = false;
    do_exit(p, 128 + sig);
    return;
  }
  if (p->paused) {
    p->pause_event.cancel();
    p->paused = false;
    do_exit(p, 128 + sig);
    return;
  }
  if (p->cpu_job != sim::kInvalidCpuJob) {
    host_.cpu().cancel(p->cpu_job);
    p->cpu_job = sim::kInvalidCpuJob;
    do_exit(p, 128 + sig);
    return;
  }
  // Mid-kernel-call: the dispatcher's kill_pending check fires at the
  // action boundary.
}

void ProcTable::deliver_wait_notify(Pid parent, Pid child, int status) {
  auto p = find(parent);
  if (!p || !p->blocked_in_wait) return;
  p->blocked_in_wait = false;
  p->view.rv = static_cast<std::int64_t>(child);
  p->view.aux = status;
  finish_action(p);
}

void ProcTable::handle_proc_rpc(HostId, const Request& req,
                                std::function<void(Reply)> respond) {
  switch (static_cast<ProcOp>(req.op)) {
    case ProcOp::kForkChild: {
      auto body = rpc::body_cast<ForkChildReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      auto rep = std::make_shared<ForkChildRep>();
      rep->child = home_fork_child(body->parent, body->child_host);
      respond(Reply{Status::ok(), rep});
      return;
    }
    case ProcOp::kExitNotify: {
      auto body = rpc::body_cast<ExitNotifyReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      home_exit(body->pid, body->status);
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case ProcOp::kWait: {
      auto body = rpc::body_cast<WaitReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      auto rep = std::make_shared<WaitRep>(
          home_wait(body->parent, body->waiter_host));
      respond(Reply{Status::ok(), rep});
      return;
    }
    case ProcOp::kWaitNotify: {
      auto body = rpc::body_cast<WaitNotifyReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      deliver_wait_notify(body->parent, body->child, body->status);
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case ProcOp::kSignal: {
      auto body = rpc::body_cast<SignalReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      respond(Reply{home_signal(body->pid, body->sig), nullptr});
      return;
    }
    case ProcOp::kSignalDeliver: {
      auto body = rpc::body_cast<SignalReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      deliver_signal(body->pid, body->sig);
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case ProcOp::kUpdateLocation: {
      auto body = rpc::body_cast<UpdateLocationReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      // Exactly-one-incarnation guard: a copy carrying an older epoch than
      // the home record lost a race with a checkpoint restart. Refusing the
      // update makes the stale copy kill itself instead of installing.
      if (body->incarnation < home_record_incarnation(body->pid)) {
        respond(Reply{Status(Err::kStale, "superseded incarnation"), nullptr});
        return;
      }
      set_home_record_location(body->pid, body->host);
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case ProcOp::kGetHostName: {
      auto rep = std::make_shared<HostNameRep>();
      rep->name = host_.name();
      respond(Reply{Status::ok(), rep});
      return;
    }
    case ProcOp::kFileCall: {
      auto body = rpc::body_cast<FileCallReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      home_file_call(*body, std::move(respond));
      return;
    }
    case ProcOp::kMigrateRequest: {
      auto body = rpc::body_cast<MigrateRequestReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      auto it = home_records_.find(body->pid);
      if (it == home_records_.end() || !it->second.alive) {
        respond(Reply{Status(Err::kSrch, "migrate request"), nullptr});
      } else {
        respond(Reply{Status::ok(), nullptr});
      }
      return;
    }
  }
  respond(Reply{Status(Err::kNotSupported, "bad proc op"), nullptr});
}

}  // namespace sprite::proc
