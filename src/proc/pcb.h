// Process control block.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fs/client.h"
#include "proc/program.h"
#include "sim/cpu.h"
#include "sim/ids.h"
#include "sim/time.h"
#include "vm/vm.h"

namespace sprite::proc {

enum class ProcState : int {
  kRunnable,   // dispatching or executing an action
  kBlocked,    // waiting for a kernel call / page fault / wait() to finish
  kFrozen,     // suspended for migration (no actions dispatched)
  kZombie,     // exited; home record holds the status until reaped
  kDead,       // fully gone
};

const char* proc_state_name(ProcState s);

struct Pcb {
  Pid pid = kInvalidPid;
  Pid ppid = kInvalidPid;
  sim::HostId home = sim::kInvalidHost;
  sim::HostId current = sim::kInvalidHost;
  ProcState state = ProcState::kRunnable;
  // Incarnation epoch under the home's pid authority. Bumped by the home
  // when it restarts the process from a checkpoint; a copy carrying an
  // older epoch (a late-thawing migration, a partitioned survivor) is
  // stale and must die rather than run alongside the restarted one.
  std::int64_t incarnation = 0;

  // The "registers + user memory": the running program and its last-action
  // results. Moved wholesale by migration.
  std::unique_ptr<Program> program;
  ProcessView view;

  // Executable identity (exec-time migration re-creates the image from it).
  std::string exe_path;
  std::vector<std::string> args;

  vm::SpacePtr space;

  // Open streams by descriptor.
  std::map<int, fs::StreamPtr> fds;
  int next_fd = 3;  // 0-2 notionally reserved

  bool foreign() const { return home != current; }

  // ---- Scheduling ----
  sim::CpuJobId cpu_job = sim::kInvalidCpuJob;  // nonzero while computing
  sim::Time remaining_compute;  // carried across preemption / migration

  // ---- Blocking detail (migration must know how to thaw the process) ----
  bool blocked_in_wait = false;   // parked until a WaitNotify arrives
  bool paused = false;            // sleeping in Pause
  sim::EventHandle pause_event;   // cancelled if frozen mid-sleep
  sim::Time pause_deadline;       // when the sleep would have ended
  sim::Time pause_remaining;      // re-armed on the target host
  // Inside the migrate-self kernel call: the process is at a safe point and
  // the call "returns" on the target host.
  bool migrate_syscall_pending = false;

  // ---- Signals ----
  bool kill_pending = false;
  int kill_sig = 0;

  // Remote-UNIX-style comparator: when true, a remote (migrated) process's
  // file kernel calls are forwarded to its home machine instead of running
  // against transferred stream state. Streams stay home. Used by the
  // forwarding-vs-transfer ablation (thesis §4.3.1).
  bool forward_file_calls = false;

  // ---- Migration ----
  // Deferred migration armed by migrate-self without a started transfer
  // (pmake's remote exec: migrate at the coming exec).
  bool migrate_on_exec = false;
  sim::HostId migrate_target = sim::kInvalidHost;
  // A freeze was requested while the process was mid-action; the dispatcher
  // honours it at the next action boundary.
  std::function<void()> freeze_waiter;

  // Time accounting for utilization reports.
  sim::Time cpu_used;
  // When the process was created (age drives long-running heuristics).
  sim::Time spawned_at;
};

using PcbPtr = std::shared_ptr<Pcb>;

}  // namespace sprite::proc
