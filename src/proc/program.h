// The user-program model.
//
// A simulated process executes a Program: a state machine the kernel drives
// by calling next() whenever the previous action completes. Actions are
// either pure computation, memory touches (driving the VM substrate), or
// kernel calls. The Program object plus its internal state plays the role of
// the process's registers and user memory contents — it is exactly what
// migration encapsulates and ships ("machine-dependent state"), and what
// fork() deep-copies.
//
// Because Programs interact with the world only through actions, the
// transparency property the thesis demands is directly testable: a program's
// observable action/result trace must be identical whether or not the
// process migrated mid-run.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "fs/types.h"
#include "sim/ids.h"
#include "sim/time.h"
#include "util/status.h"
#include "vm/vm.h"

namespace sprite::proc {

// Process identifier with the home host encoded in the upper half, as in
// Sprite (a process keeps its pid across migrations; any kernel can find the
// home machine from the pid alone).
using Pid = std::uint64_t;
inline constexpr Pid kInvalidPid = 0;

constexpr Pid make_pid(sim::HostId home, std::uint32_t seq) {
  return (static_cast<Pid>(home + 1) << 32) | seq;
}
constexpr sim::HostId pid_home(Pid pid) {
  return static_cast<sim::HostId>((pid >> 32) - 1);
}

// What a program observes each time it runs: identity plus the result of its
// previous action. Maintained by the kernel; part of migrated state.
struct ProcessView {
  Pid pid = kInvalidPid;
  Pid ppid = kInvalidPid;

  // Result of the last action.
  util::Status status;      // kOk unless the action failed
  std::int64_t rv = 0;      // pid from fork/wait, bytes moved, time, fd...
  int aux = 0;              // wait: child's exit status
  fs::Bytes data;           // read / pdev results
  bool is_child = false;    // true on the child side of fork
  std::string text;         // gethostname and similar string results

  void clear_result() {
    status = util::Status::ok();
    rv = 0;
    aux = 0;
    data.clear();
    is_child = false;
    text.clear();
  }
};

// ---- Actions ----

// Consume CPU time on the current host.
struct Compute {
  sim::Time cpu;
};

// Touch a range of virtual memory pages (may fault; write dirties).
struct Touch {
  vm::Segment seg = vm::Segment::kHeap;
  std::int64_t first = 0;
  std::int64_t count = 1;
  bool write = false;
};

struct SysOpen {
  std::string path;
  fs::OpenFlags flags;
};
struct SysClose {
  int fd = -1;
};
struct SysRead {
  int fd = -1;
  std::int64_t len = 0;
};
struct SysWrite {
  int fd = -1;
  fs::Bytes data;          // when empty, writes `len` zero bytes
  std::int64_t len = 0;
};
struct SysSeek {
  int fd = -1;
  std::int64_t offset = 0;
};
struct SysFsync {
  int fd = -1;
};
// Duplicate a descriptor: the new fd shares the stream (and offset), as
// after dup(2). Result: rv = new fd.
struct SysDup {
  int fd = -1;
};
struct SysFtruncate {
  int fd = -1;
  std::int64_t size = 0;
};
struct SysUnlink {
  std::string path;
};
struct SysMkdir {
  std::string path;
};
struct SysStat {
  std::string path;
};
struct SysPdevCall {
  int fd = -1;
  fs::Bytes request;
};

struct SysFork {};
// Create an anonymous pipe. Result: rv = read fd, aux = write fd.
struct SysPipe {};
// Replace this process image. If a migration is pending on the process the
// kernel performs exec-time migration: the new image is created directly on
// the target host (the cheap common case the thesis optimizes for).
struct SysExec {
  std::string path;
  std::vector<std::string> args;
};
struct SysExit {
  int status = 0;
};
// Wait for any child to exit.
struct SysWait {};
struct SysGetPid {};
struct SysGetPPid {};
struct SysGetTime {};
// Reported relative to the HOME machine: forwarded when remote.
struct SysGetHostName {};
struct SysKill {
  Pid pid = kInvalidPid;
  int sig = 9;
};
// Ask the kernel to migrate this process. With at_exec (the default, and the
// common case in pmake's remote exec) the transfer is deferred to the coming
// exec so no address space moves at all; otherwise the process migrates
// immediately as an active process.
struct SysMigrateSelf {
  sim::HostId target = sim::kInvalidHost;
  bool at_exec = true;
};
// Sleep for simulated time without consuming CPU.
struct Pause {
  sim::Time duration;
};

using Action =
    std::variant<Compute, Touch, Pause, SysOpen, SysClose, SysRead, SysWrite,
                 SysSeek, SysFsync, SysDup, SysFtruncate, SysUnlink, SysMkdir,
                 SysStat, SysPdevCall, SysFork, SysPipe, SysExec, SysExit,
                 SysWait, SysGetPid, SysGetPPid, SysGetTime, SysGetHostName,
                 SysKill, SysMigrateSelf>;

class Program {
 public:
  virtual ~Program() = default;

  // Produces the next action. Called exactly once per completed action.
  virtual Action next(const ProcessView& view) = 0;

  // Deep copy for fork (the child continues from the same program state).
  virtual std::unique_ptr<Program> clone() const = 0;

  // ---- Checkpoint support (src/ckpt/) ----
  // A checkpointable program serializes its internal state — the "register
  // and user memory contents" a checkpoint image must preserve — and a
  // fresh instance built by the same ProgramImage factory restores from it.
  virtual bool checkpointable() const { return false; }
  virtual fs::Bytes encode_state() const { return {}; }
  virtual util::Status decode_state(const fs::Bytes& /*state*/) {
    return util::Status(util::Err::kNotSupported,
                        "program is not checkpointable");
  }
};

// An executable image: how /bin paths map to runnable Programs plus default
// segment sizes. Registered cluster-wide (all hosts see the same binaries
// through the shared file system).
struct ProgramImage {
  std::function<std::unique_ptr<Program>(const std::vector<std::string>& args)>
      factory;
  std::int64_t code_pages = 16;
  std::int64_t heap_pages = 16;
  std::int64_t stack_pages = 4;
};

}  // namespace sprite::proc
