// Kernel-call dispatch classification — the reproduction of the thesis's
// Appendix A ("How each system call is handled to ensure transparent
// process migration").
//
// Every kernel call a remote (migrated) process issues is handled one of
// four ways:
//   kLocal            — executed entirely on the current host with no
//                       process-specific state (e.g. gettimeofday: Sprite
//                       keeps cluster clocks synchronized).
//   kTransferredState — executed on the current host using state that
//                       migrated with the process (open streams, the VM
//                       image, the cached pid). This is Sprite's workhorse
//                       category: file I/O stays fast after migration.
//   kForwardHome      — shipped to the home machine by RPC because the call
//                       reads or writes state kept there (process family,
//                       host identity as seen by the user).
//   kHomeInvolved     — executed on the current host but with a home-machine
//                       update as a side effect (exit must clear the home's
//                       record; fork must allocate the child's pid at home).
#pragma once

#include <vector>

namespace sprite::proc {

enum class Syscall : int {
  kOpen = 1,
  kClose,
  kRead,
  kWrite,
  kSeek,
  kFsync,
  kDup,
  kFtruncate,
  kUnlink,
  kMkdir,
  kStat,
  kPdevCall,
  kPipe,
  kFork,
  kExec,
  kExit,
  kWait,
  kGetPid,
  kGetPPid,
  kGetTime,
  kGetHostName,
  kKill,
  kMigrateSelf,
};

enum class Handling : int {
  kLocal,
  kTransferredState,
  kForwardHome,
  kHomeInvolved,
};

// The dispatch table itself. Total over Syscall (checked by tests).
Handling handling_of(Syscall call);

// All calls, for table-totality property tests.
const std::vector<Syscall>& all_syscalls();

const char* syscall_name(Syscall call);
const char* handling_name(Handling h);

// ---------------------------------------------------------------------------
// The full Appendix-A table.
//
// The thesis appendix walks the complete 4.3BSD kernel-call list and states
// how each is handled for a remote process. This table reproduces that
// classification for the whole list; the simulation implements the subset
// marked `implemented` (enough to run every experiment), and the rest are
// classified so the table's totality — the paper's real claim: *every* call
// has a transparent handling — is checkable.
// ---------------------------------------------------------------------------

struct AppendixAEntry {
  const char* name;      // 4.3BSD call
  Handling handling;     // how a remote process's invocation is handled
  bool implemented;      // modeled by this simulation
  const char* note;      // one-line rationale
};

const std::vector<AppendixAEntry>& appendix_a();

}  // namespace sprite::proc
