// Shared-file host selection (thesis §6.3.1): availability lives in a file
// on the shared FS; selection decisions are made by the requesters.
//
// Every workstation rewrites its 64-byte record each update period, and
// requesters read the whole file, pick a host, and write a claim record.
// Because the file is concurrently write-shared, Sprite's consistency
// protocol disables caching on it and every access becomes server traffic —
// which is precisely why Sprite abandoned this architecture: the experiment
// measures the latency and the server load it induces, plus the races
// (double grants) its unsynchronized claims allow.
#pragma once

#include <cstdint>
#include <string>

#include "fs/client.h"
#include "loadshare/selector.h"
#include "util/status.h"

namespace sprite::kern {
class Host;
}

namespace sprite::ls {

class LoadShareNode;

inline constexpr std::int64_t kLoadFileRecord = 64;

// Periodically writes this host's availability record.
class LoadFileUpdater {
 public:
  LoadFileUpdater(kern::Host& host, LoadShareNode& node, std::string path);
  void start();
  void update_now();

  // Drops the cached stream (and any orphaned in-flight open) after a crash
  // so the next update reopens against the rebooted file server.
  void reset() {
    stream_ = nullptr;
    opening_ = false;
  }

 private:
  void ensure_open(std::function<void()> then);

  kern::Host& host_;
  LoadShareNode& node_;
  std::string path_;
  fs::StreamPtr stream_;
  bool opening_ = false;
};

class SharedFileSelector : public HostSelector {
 public:
  SharedFileSelector(kern::Host& host, std::string load_path,
                     std::string claim_path, int num_hosts,
                     std::function<bool(sim::HostId)> ground_truth_idle);

  void request_hosts(int n, GrantCb cb) override;
  void release_host(sim::HostId h) override;

  void reset() override {
    load_stream_ = nullptr;
    claim_stream_ = nullptr;
  }

 private:
  struct Candidate {
    sim::HostId host;
    double load;
  };
  void ensure_open(std::function<void(util::Status)> then);
  void try_claim(std::shared_ptr<std::vector<Candidate>> cands, std::size_t i,
                 int want, std::shared_ptr<std::vector<sim::HostId>> got,
                 sim::Time start, GrantCb cb);

  kern::Host& host_;
  std::string load_path_;
  std::string claim_path_;
  int num_hosts_;
  fs::StreamPtr load_stream_;
  fs::StreamPtr claim_stream_;
  std::function<bool(sim::HostId)> ground_truth_;
};

}  // namespace sprite::ls
