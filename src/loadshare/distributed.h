// Distributed host-selection architectures (thesis §6.3.3–6.3.4).
//
// ProbabilisticSelector — MOSIX-style: every host maintains a load vector
// fed by periodic gossip to random peers, aged so newer data dominates.
// Selection is a purely local decision followed by a reservation RPC to the
// chosen host; stale vectors show up as refused reservations ("bad grants"),
// the cost of distributed state.
//
// MulticastSelector — stateless: the requester multicasts "who is idle?",
// idle hosts answer after a random backoff, and the requester reserves the
// first respondents. One cheap transmission per request, but every host pays
// to receive it, and there is no global assignment state.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "loadshare/node.h"
#include "loadshare/selector.h"
#include "loadshare/wire.h"

namespace sprite::kern {
class Host;
}

namespace sprite::ls {

class ProbabilisticSelector : public HostSelector {
 public:
  ProbabilisticSelector(kern::Host& host, LoadShareNode& node,
                        std::function<bool(sim::HostId)> ground_truth_idle);

  void request_hosts(int n, GrantCb cb) override;
  void release_host(sim::HostId h) override;

 private:
  void try_reserve(std::shared_ptr<std::vector<sim::HostId>> cands,
                   std::size_t i, int want,
                   std::shared_ptr<std::vector<sim::HostId>> got,
                   sim::Time start, GrantCb cb);

  kern::Host& host_;
  LoadShareNode& node_;
  std::function<bool(sim::HostId)> ground_truth_;
};

class MulticastSelector : public HostSelector {
 public:
  MulticastSelector(kern::Host& host, LoadShareNode& node,
                    std::function<bool(sim::HostId)> ground_truth_idle);

  void request_hosts(int n, GrantCb cb) override;
  void release_host(sim::HostId h) override;

 private:
  void reserve_offers(std::shared_ptr<std::vector<sim::HostId>> offers,
                      std::size_t i, int want,
                      std::shared_ptr<std::vector<sim::HostId>> got,
                      sim::Time start, GrantCb cb);

  kern::Host& host_;
  LoadShareNode& node_;
  std::function<bool(sim::HostId)> ground_truth_;
  std::int64_t next_seq_ = 1;
  // Offers collected for the in-flight query (one at a time per selector).
  std::int64_t current_seq_ = 0;
  std::vector<sim::HostId> offers_;
};

}  // namespace sprite::ls
