// LoadShareNode: the per-workstation half of load sharing.
//
// Tracks whether this host is *available* in Sprite's sense — no user input
// for the threshold interval AND load average below the threshold — serves
// the kLoadShare RPC protocol (reservation, gossip, multicast queries), and
// triggers the two owner-protection actions when the user returns: evict all
// foreign processes home, and announce not-idle.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "loadshare/wire.h"
#include "rpc/rpc.h"
#include "sim/costs.h"
#include "util/rng.h"
#include "util/status.h"

namespace sprite::kern {
class Host;
}

namespace sprite::ls {

class LoadShareNode {
 public:
  explicit LoadShareNode(kern::Host& host);

  void register_services();

  sim::HostId id() const;

  // ---- Availability ----
  bool is_idle() const;
  bool reserved() const { return reserved_by_ != sim::kInvalidHost; }
  sim::HostId reserved_by() const { return reserved_by_; }
  double load() const;

  // Local reservation bookkeeping (also reachable via kReserve RPC).
  // Reserving adds anticipated load (flood prevention, as in MOSIX).
  util::Status try_reserve(sim::HostId requester);
  void release(sim::HostId requester);

  // ---- Owner protection ----
  // Hook user input: evict foreign processes and call `on_user_return`
  // (used by architectures to announce not-idle immediately).
  void enable_autoeviction(std::function<void()> on_user_return = nullptr);

  // ---- Distributed architectures ----
  // MOSIX-style gossip: every gossip period, send our vector to `fanout`
  // random peers; entries age out.
  void start_gossip(std::vector<sim::HostId> peers);
  const std::map<sim::HostId, HostLoad>& load_vector() const {
    return vector_;
  }

  // Multicast: answer kQueryIdle with a delayed kOffer when idle.
  void enable_multicast_responder();

  // Requester-side sink for kOffer messages (set by MulticastSelector).
  void set_offer_sink(std::function<void(const OfferReq&)> sink) {
    offer_sink_ = std::move(sink);
  }

  // ---- Crash support ----
  // This host crashed: the reservation and the cached load vector die with
  // it. No load-bias adjustment — the CPU was reset wholesale.
  void crash_reset();
  // A peer crashed: drop its gossip entry, and if it held our reservation,
  // clear it so this host becomes available again instead of staying
  // reserved by a ghost forever.
  void peer_crashed(sim::HostId peer);

  // Registry-backed (trace/trace.h); the struct is a refreshed view.
  struct Stats {
    std::int64_t reserves_granted = 0;
    std::int64_t reserves_refused = 0;
    std::int64_t evictions_triggered = 0;
    std::int64_t gossip_sent = 0;
    std::int64_t offers_sent = 0;
  };
  const Stats& stats() const;

 private:
  void handle_rpc(sim::HostId src, const rpc::Request& req,
                  std::function<void(rpc::Reply)> respond);
  void gossip_tick();
  HostLoad own_entry() const;

  kern::Host& host_;
  util::Rng rng_;
  sim::HostId reserved_by_ = sim::kInvalidHost;
  bool responder_enabled_ = false;
  std::vector<sim::HostId> gossip_peers_;
  std::map<sim::HostId, HostLoad> vector_;
  std::function<void(const OfferReq&)> offer_sink_;
  std::function<void()> on_user_return_;
  bool evicting_ = false;

  // Registry-backed metrics (trace/trace.h) and the legacy struct view.
  trace::Counter* c_reserves_granted_;
  trace::Counter* c_reserves_refused_;
  trace::Counter* c_evictions_;
  // Reservations cleared because the reserver crashed — distinct from
  // owner-return evictions (ls.eviction.triggered).
  trace::Counter* c_crash_releases_;
  trace::Counter* c_gossip_sent_;
  trace::Counter* c_offers_sent_;
  mutable Stats stats_view_;
};

}  // namespace sprite::ls
