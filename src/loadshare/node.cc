#include "loadshare/node.h"

#include "kern/cluster.h"
#include "migration/manager.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::ls {

using rpc::Reply;
using rpc::Request;
using rpc::ServiceId;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

LoadShareNode::LoadShareNode(kern::Host& host)
    : host_(host), rng_(host.cluster().sim().fork_rng()) {
  trace::Registry& tr = host_.cluster().sim().trace();
  c_reserves_granted_ = &tr.counter("ls.reserve.granted", host_.id());
  c_reserves_refused_ = &tr.counter("ls.reserve.refused", host_.id());
  c_evictions_ = &tr.counter("ls.eviction.triggered", host_.id());
  c_crash_releases_ = &tr.counter("ls.eviction.crash", host_.id());
  c_gossip_sent_ = &tr.counter("ls.gossip.sent", host_.id());
  c_offers_sent_ = &tr.counter("ls.offer.sent", host_.id());
}

const LoadShareNode::Stats& LoadShareNode::stats() const {
  stats_view_.reserves_granted = c_reserves_granted_->value();
  stats_view_.reserves_refused = c_reserves_refused_->value();
  stats_view_.evictions_triggered = c_evictions_->value();
  stats_view_.gossip_sent = c_gossip_sent_->value();
  stats_view_.offers_sent = c_offers_sent_->value();
  return stats_view_;
}

sim::HostId LoadShareNode::id() const { return host_.id(); }

void LoadShareNode::register_services() {
  host_.rpc().register_service(
      ServiceId::kLoadShare,
      [this](HostId src, const Request& req, std::function<void(Reply)> r) {
        handle_rpc(src, req, std::move(r));
      });
}

double LoadShareNode::load() const { return host_.cpu().load_average(); }

bool LoadShareNode::is_idle() const {
  const auto& costs = host_.cluster().costs();
  const Time now = host_.cluster().sim().now();
  const Time since_input = now - host_.last_user_input();
  return since_input >= costs.idle_input_threshold &&
         host_.cpu().load_average() < costs.idle_load_threshold;
}

util::Status LoadShareNode::try_reserve(HostId requester) {
  if (reserved()) {
    c_reserves_refused_->inc();
    return Status(Err::kBusy, "already reserved");
  }
  if (!is_idle()) {
    c_reserves_refused_->inc();
    return Status(Err::kBusy, "not idle");
  }
  reserved_by_ = requester;
  // Anticipated load: report ourselves busier before the migrated work
  // arrives, so other selectors do not flood this host (MOSIX-style).
  host_.cpu().set_load_bias(host_.cpu().load_bias() + 1.0);
  c_reserves_granted_->inc();
  return Status::ok();
}

void LoadShareNode::release(HostId requester) {
  if (reserved_by_ != requester) return;
  reserved_by_ = sim::kInvalidHost;
  host_.cpu().set_load_bias(
      std::max(0.0, host_.cpu().load_bias() - 1.0));
}

void LoadShareNode::crash_reset() {
  reserved_by_ = sim::kInvalidHost;
  vector_.clear();
  evicting_ = false;
}

void LoadShareNode::peer_crashed(HostId peer) {
  vector_.erase(peer);
  if (reserved_by_ != peer) return;
  release(peer);
  c_crash_releases_->inc();
  if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
    tr.instant("ls", "reservation released: reserver crashed", host_.id(), -1,
               {{"reserver", std::to_string(peer)}});
}

void LoadShareNode::enable_autoeviction(std::function<void()> on_user_return) {
  on_user_return_ = std::move(on_user_return);
  // Register the latency histogram now, not at first eviction: exports and
  // the metric inventory must see it even on runs where no owner returned.
  host_.cluster().sim().trace().histogram(
      "ls.eviction.latency_ms", trace::default_latency_bounds_ms(), host_.id());
  host_.set_input_observer([this] {
    if (on_user_return_) on_user_return_();
    if (evicting_) return;
    if (host_.procs().foreign_processes().empty()) return;
    evicting_ = true;
    c_evictions_->inc();
    if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
      tr.instant("ls", "user returned: evict foreign", host_.id(), -1,
                 {{"foreign", std::to_string(
                                  host_.procs().foreign_processes().size())}});
    // The owner is waiting: time from the keystroke to the last foreign
    // process gone is the latency the thesis promises stays sub-second.
    const Time t0 = host_.cluster().sim().now();
    host_.mig().evict_all_foreign([this, t0](int) {
      evicting_ = false;
      host_.cluster().sim().trace().histogram(
          "ls.eviction.latency_ms", trace::default_latency_bounds_ms(),
          host_.id()).record(host_.cluster().sim().now() - t0);
    });
  });
}

HostLoad LoadShareNode::own_entry() const {
  HostLoad e;
  e.host = host_.id();
  e.load = load();
  e.idle = is_idle() && !reserved();
  e.stamped = host_.cluster().sim().now();
  return e;
}

void LoadShareNode::start_gossip(std::vector<HostId> peers) {
  gossip_peers_ = std::move(peers);
  const auto& costs = host_.cluster().costs();
  host_.cluster().sim().every(costs.ls_gossip_period,
                              [this] { gossip_tick(); });
}

void LoadShareNode::gossip_tick() {
  const auto& costs = host_.cluster().costs();
  const Time now = host_.cluster().sim().now();

  // Refresh our own entry and age out stale ones.
  vector_[host_.id()] = own_entry();
  for (auto it = vector_.begin(); it != vector_.end();) {
    if (now - it->second.stamped > costs.ls_entry_max_age &&
        it->first != host_.id()) {
      it = vector_.erase(it);
    } else {
      ++it;
    }
  }

  if (gossip_peers_.empty()) return;
  // Send our vector (own entry plus a few cached ones) to random peers.
  for (int k = 0; k < costs.ls_gossip_fanout; ++k) {
    const HostId peer =
        gossip_peers_[rng_.index(gossip_peers_.size())];
    if (peer == host_.id()) continue;
    auto body = std::make_shared<GossipReq>();
    for (const auto& [h, e] : vector_) {
      body->entries.push_back(e);
      if (body->entries.size() >= 8) break;
    }
    c_gossip_sent_->inc();
    host_.rpc().call(peer, ServiceId::kLoadShare,
                     static_cast<int>(LsOp::kGossip), body,
                     [](util::Result<Reply>) {});
  }
}

void LoadShareNode::enable_multicast_responder() { responder_enabled_ = true; }

void LoadShareNode::handle_rpc(HostId /*src*/, const Request& req,
                               std::function<void(Reply)> respond) {
  switch (static_cast<LsOp>(req.op)) {
    case LsOp::kGossip: {
      auto body = rpc::body_cast<GossipReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      for (const auto& e : body->entries) {
        if (e.host == host_.id()) continue;
        auto it = vector_.find(e.host);
        if (it == vector_.end() || it->second.stamped < e.stamped)
          vector_[e.host] = e;
      }
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case LsOp::kReserve: {
      auto body = rpc::body_cast<ReserveReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      respond(Reply{try_reserve(body->requester), nullptr});
      return;
    }
    case LsOp::kRelease: {
      auto body = rpc::body_cast<ReserveReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      release(body->requester);
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case LsOp::kQueryIdle: {
      auto body = rpc::body_cast<QueryIdleReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      respond(Reply{Status::ok(), nullptr});
      if (!responder_enabled_ || !is_idle() || reserved()) return;
      // Respond after a random backoff so the requester is not flooded by
      // simultaneous replies from every idle host.
      const auto& costs = host_.cluster().costs();
      const Time delay = Time::usec(static_cast<std::int64_t>(
          rng_.uniform(0.0, static_cast<double>(
                                costs.ls_multicast_backoff.us()))));
      host_.cluster().sim().after(
          delay, [this, requester = body->requester, seq = body->seq] {
            if (!is_idle() || reserved()) return;  // state changed meanwhile
            auto offer = std::make_shared<OfferReq>();
            offer->host = host_.id();
            offer->seq = seq;
            offer->load = load();
            c_offers_sent_->inc();
            host_.rpc().call(requester, ServiceId::kLoadShare,
                             static_cast<int>(LsOp::kOffer), offer,
                             [](util::Result<Reply>) {});
          });
      return;
    }
    case LsOp::kOffer: {
      auto body = rpc::body_cast<OfferReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      if (offer_sink_) offer_sink_(*body);
      respond(Reply{Status::ok(), nullptr});
      return;
    }
  }
  respond(Reply{Status(Err::kNotSupported, "bad loadshare op"), nullptr});
}

}  // namespace sprite::ls
