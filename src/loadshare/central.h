// Centralized host selection: the migd daemon (thesis chapter 6's winning
// architecture).
//
// migd is a user-level server process reached through a pseudo-device, just
// as in Sprite: every transaction pays the pdev wakeup latency plus daemon
// CPU on migd's host. Workstations announce their availability periodically
// and immediately on state changes; requesters ask for idle hosts and
// release them when done. The daemon enforces fair allocation under
// contention and never double-assigns a host (its state is authoritative —
// the property the distributed architectures give up).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "fs/client.h"
#include "loadshare/selector.h"
#include "sim/ids.h"
#include "sim/time.h"
#include "util/status.h"

namespace sprite::kern {
class Host;
}

namespace sprite::ls {

class LoadShareNode;

class MigdDaemon {
 public:
  // `host` is where the daemon process runs (any host; Sprite ran it on a
  // reliable machine). install() creates the pseudo-device file.
  explicit MigdDaemon(kern::Host& host);
  util::Status install(const std::string& pdev_path);

  struct HostInfo {
    bool idle = false;
    double load = 0.0;
    sim::Time last_announce;
    sim::HostId assigned_to = sim::kInvalidHost;
  };

  int idle_unassigned(sim::Time now) const;
  const std::map<sim::HostId, HostInfo>& table() const { return table_; }

  // Crash-restart recovery (thesis §6.3.2: "the facility can be restarted
  // as soon as its failure is detected"). All soft state is dropped; the
  // next round of announcements repopulates availability, and hosts that
  // are running granted work announce themselves busy, so they are not
  // double-granted even though the assignment table was lost.
  void restart();

  // Another host crashed (migd's host monitor said so): drop its
  // availability entry and free every host it held as a requester, so
  // grants to a dead requester do not pin idle hosts forever.
  void peer_crashed(sim::HostId h);
  // Hosts whose death migd must detect (host-monitor interest): requesters
  // currently holding grants, and the hosts assigned to them.
  void collect_peer_interest(std::vector<sim::HostId>& out) const;

  struct Stats {
    std::int64_t announcements = 0;
    std::int64_t requests = 0;
    std::int64_t grants = 0;
    std::int64_t denials = 0;
    std::int64_t releases = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::string handle(const std::string& request);
  std::string handle_req(sim::HostId requester, int n);
  bool fresh(const HostInfo& info, sim::Time now) const;

  kern::Host& host_;
  std::map<sim::HostId, HostInfo> table_;
  std::map<sim::HostId, int> grants_by_requester_;
  std::map<sim::HostId, sim::Time> last_request_;
  // Hosts reclaimed from an over-share requester; reported back to it in
  // its next REQ reply (Sprite's cooperative recall: pmake returns hosts at
  // task boundaries).
  std::map<sim::HostId, std::vector<sim::HostId>> revocations_;
  Stats stats_;
};

// Per-workstation announcer: keeps migd informed through the pdev.
class MigdAnnouncer {
 public:
  MigdAnnouncer(kern::Host& host, LoadShareNode& node, std::string pdev_path);
  // Starts periodic announcements; call announce_now() on state changes
  // (wired to user-return by the Facility).
  void start();
  void announce_now();

  // Drops the cached pdev stream (and a possibly-orphaned in-flight open)
  // after this host or migd's host crashed; the next announcement reopens,
  // picking up migd's reinstalled pseudo-device.
  void reset();

 private:
  void ensure_open(std::function<void()> then);

  kern::Host& host_;
  LoadShareNode& node_;
  std::string path_;
  fs::StreamPtr stream_;
  bool opening_ = false;
};

// Client selector speaking to migd.
class CentralSelector : public HostSelector {
 public:
  CentralSelector(kern::Host& host, std::string pdev_path,
                  std::function<bool(sim::HostId)> ground_truth_idle);

  void request_hosts(int n, GrantCb cb) override;
  void release_host(sim::HostId h) override;

  // Hosts migd reclaimed from us for fairness; the caller (e.g. pmake) must
  // stop dispatching to them. Clears the pending list.
  std::vector<sim::HostId> take_revoked() override {
    auto out = std::move(revoked_);
    revoked_.clear();
    return out;
  }

  void reset() override {
    stream_ = nullptr;
    revoked_.clear();
  }

 private:
  void ensure_open(std::function<void(util::Status)> then);

  kern::Host& host_;
  std::string path_;
  fs::StreamPtr stream_;
  std::function<bool(sim::HostId)> ground_truth_;
  std::vector<sim::HostId> revoked_;
};

}  // namespace sprite::ls
