// Facility: assembles one host-selection architecture over a Cluster.
//
// Creates a LoadShareNode per workstation, wires owner-return eviction, and
// instantiates the chosen architecture's moving parts (migd daemon +
// announcers, load-file updaters, gossip, or multicast responders) plus a
// per-workstation HostSelector for requesters.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "loadshare/central.h"
#include "loadshare/distributed.h"
#include "loadshare/node.h"
#include "loadshare/selector.h"
#include "loadshare/shared_file.h"

namespace sprite::kern {
class Cluster;
}

namespace sprite::ls {

enum class Arch : int {
  kCentral = 0,
  kSharedFile,
  kProbabilistic,
  kMulticast,
};
const char* arch_name(Arch a);

class Facility {
 public:
  Facility(kern::Cluster& cluster, Arch arch);

  Arch arch() const { return arch_; }

  LoadShareNode& node(sim::HostId h);
  HostSelector& selector(sim::HostId h);
  MigdDaemon* daemon() { return daemon_.get(); }

  // Ground truth for stats: is the host actually available right now?
  bool actually_idle(sim::HostId h);

  // Number of workstations currently idle (ground truth).
  int idle_count();

  // Aggregated selector stats across all workstations.
  HostSelector::Stats aggregate_stats() const;

 private:
  // Crash/reboot recovery, registered with the cluster at construction. A
  // workstation crash wipes its node/selector soft state and tells every
  // surviving node; a reboot re-wires the input observer (Host::crash_reset
  // cleared it) and, if migd's host came back, restarts and reinstalls the
  // daemon (thesis §6.3.2).
  void on_crash(sim::HostId h);
  void on_reboot(sim::HostId h);

  kern::Cluster& cluster_;
  Arch arch_;
  std::map<sim::HostId, std::unique_ptr<LoadShareNode>> nodes_;
  std::map<sim::HostId, std::unique_ptr<HostSelector>> selectors_;
  std::unique_ptr<MigdDaemon> daemon_;
  sim::HostId daemon_host_ = sim::kInvalidHost;
  std::map<sim::HostId, std::unique_ptr<MigdAnnouncer>> announcers_;
  std::map<sim::HostId, std::unique_ptr<LoadFileUpdater>> updaters_;
  // The user-return hooks passed to enable_autoeviction, kept so the
  // observer can be re-installed after a reboot.
  std::map<sim::HostId, std::function<void()>> eviction_hooks_;
};

}  // namespace sprite::ls
