#include "loadshare/shared_file.h"

#include <cstdio>
#include <sstream>

#include "kern/cluster.h"
#include "loadshare/node.h"
#include "util/assert.h"

namespace sprite::ls {

using fs::Bytes;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

namespace {

Bytes pad_record(const std::string& s) {
  Bytes out(s.begin(), s.end());
  out.resize(static_cast<std::size_t>(kLoadFileRecord), ' ');
  return out;
}

std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

}  // namespace

// ---------------------------------------------------------------------------
// LoadFileUpdater
// ---------------------------------------------------------------------------

LoadFileUpdater::LoadFileUpdater(kern::Host& host, LoadShareNode& node,
                                 std::string path)
    : host_(host), node_(node), path_(std::move(path)) {}

void LoadFileUpdater::ensure_open(std::function<void()> then) {
  if (stream_) return then();
  if (opening_) return;
  opening_ = true;
  host_.fs().open(path_, fs::OpenFlags::create_rw(),
                  [this, then = std::move(then)](
                      util::Result<fs::StreamPtr> r) {
                    opening_ = false;
                    if (!r.is_ok()) return;
                    stream_ = *r;
                    then();
                  });
}

void LoadFileUpdater::start() {
  host_.cluster().sim().every(host_.cluster().costs().ls_update_period,
                              [this] { update_now(); });
}

void LoadFileUpdater::update_now() {
  ensure_open([this] {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%d %d %.3f %lld", host_.id(),
                  node_.is_idle() && !node_.reserved() ? 1 : 0, node_.load(),
                  static_cast<long long>(host_.cluster().sim().now().us()));
    const Status s =
        host_.fs().seek(stream_, host_.id() * kLoadFileRecord);
    SPRITE_CHECK(s.is_ok());
    host_.fs().write(stream_, pad_record(buf),
                     [](util::Result<std::int64_t>) {});
  });
}

// ---------------------------------------------------------------------------
// SharedFileSelector
// ---------------------------------------------------------------------------

SharedFileSelector::SharedFileSelector(
    kern::Host& host, std::string load_path, std::string claim_path,
    int num_hosts, std::function<bool(sim::HostId)> ground_truth_idle)
    : host_(host),
      load_path_(std::move(load_path)),
      claim_path_(std::move(claim_path)),
      num_hosts_(num_hosts),
      ground_truth_(std::move(ground_truth_idle)) {
  bind_metrics(host_.cluster().sim().trace(), host_.id());
}

void SharedFileSelector::ensure_open(std::function<void(Status)> then) {
  if (load_stream_ && claim_stream_) return then(Status::ok());
  host_.fs().open(
      load_path_, fs::OpenFlags::create_rw(),
      [this, then = std::move(then)](util::Result<fs::StreamPtr> r) mutable {
        if (!r.is_ok()) return then(r.status());
        load_stream_ = *r;
        host_.fs().open(claim_path_, fs::OpenFlags::create_rw(),
                        [this, then = std::move(then)](
                            util::Result<fs::StreamPtr> r2) {
                          if (!r2.is_ok()) return then(r2.status());
                          claim_stream_ = *r2;
                          then(Status::ok());
                        });
      });
}

void SharedFileSelector::request_hosts(int n, GrantCb cb) {
  note_request();
  const Time start = host_.cluster().sim().now();
  ensure_open([this, n, start, cb = std::move(cb)](Status s) mutable {
    if (!s.is_ok()) return cb({});
    // Read the whole availability file.
    Status se = host_.fs().seek(load_stream_, 0);
    SPRITE_CHECK(se.is_ok());
    host_.fs().read(
        load_stream_, num_hosts_ * kLoadFileRecord,
        [this, n, start, cb = std::move(cb)](util::Result<Bytes> r) mutable {
          if (!r.is_ok()) return cb({});
          auto cands = std::make_shared<std::vector<Candidate>>();
          const Time now = host_.cluster().sim().now();
          const Time max_age = host_.cluster().costs().ls_update_period * 3.0;
          const std::string all = to_string(*r);
          for (std::int64_t rec = 0;
               (rec + 1) * kLoadFileRecord <=
               static_cast<std::int64_t>(all.size());
               ++rec) {
            std::istringstream in(all.substr(
                static_cast<std::size_t>(rec * kLoadFileRecord),
                static_cast<std::size_t>(kLoadFileRecord)));
            long h;
            int idle;
            double load;
            long long stamp;
            if (!(in >> h >> idle >> load >> stamp)) continue;
            if (!idle || static_cast<HostId>(h) == host_.id()) continue;
            if (now - Time::usec(stamp) > max_age) continue;
            cands->push_back({static_cast<HostId>(h), load});
          }
          std::sort(cands->begin(), cands->end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.load < b.load;
                    });
          auto got = std::make_shared<std::vector<HostId>>();
          try_claim(cands, 0, n, got, start, std::move(cb));
        });
  });
}

void SharedFileSelector::try_claim(
    std::shared_ptr<std::vector<Candidate>> cands, std::size_t i, int want,
    std::shared_ptr<std::vector<HostId>> got, Time start, GrantCb cb) {
  if (static_cast<int>(got->size()) >= want || i >= cands->size()) {
    note_grant_done(static_cast<std::int64_t>(got->size()),
                    (host_.cluster().sim().now() - start).ms());
    if (ground_truth_) {
      for (HostId h : *got)
        if (!ground_truth_(h)) note_bad_grant();
    }
    cb(*got);
    return;
  }
  const HostId target = (*cands)[i].host;
  // Read the claim record first: someone may already hold the host.
  Status se = host_.fs().seek(claim_stream_, target * kLoadFileRecord);
  SPRITE_CHECK(se.is_ok());
  host_.fs().read(
      claim_stream_, kLoadFileRecord,
      [this, cands, i, want, got, start, target,
       cb = std::move(cb)](util::Result<Bytes> r) mutable {
        long long claimant = -1, stamp = 0;
        if (r.is_ok() && !r->empty()) {
          std::istringstream in(to_string(*r));
          in >> claimant >> stamp;
        }
        const Time now = host_.cluster().sim().now();
        const bool claimed =
            claimant >= 0 && now - Time::usec(stamp) <= Time::minutes(5);
        if (claimed) {
          try_claim(cands, i + 1, want, got, start, std::move(cb));
          return;
        }
        // Write our claim, then read it back: last-writer-wins, and the
        // window between our write and the verification read is exactly the
        // race the thesis holds against this architecture.
        char buf[64];
        std::snprintf(buf, sizeof buf, "%d %lld", host_.id(),
                      static_cast<long long>(now.us()));
        Status se2 = host_.fs().seek(claim_stream_, target * kLoadFileRecord);
        SPRITE_CHECK(se2.is_ok());
        host_.fs().write(
            claim_stream_, pad_record(buf),
            [this, cands, i, want, got, start, target,
             cb = std::move(cb)](util::Result<std::int64_t> w) mutable {
              if (!w.is_ok())
                return try_claim(cands, i + 1, want, got, start,
                                 std::move(cb));
              Status se3 =
                  host_.fs().seek(claim_stream_, target * kLoadFileRecord);
              SPRITE_CHECK(se3.is_ok());
              host_.fs().read(
                  claim_stream_, kLoadFileRecord,
                  [this, cands, i, want, got, start, target,
                   cb = std::move(cb)](util::Result<Bytes> rb) mutable {
                    long long who = -1, st2 = 0;
                    if (rb.is_ok() && !rb->empty()) {
                      std::istringstream in(to_string(*rb));
                      in >> who >> st2;
                    }
                    if (who == host_.id()) got->push_back(target);
                    try_claim(cands, i + 1, want, got, start, std::move(cb));
                  });
            });
      });
}

void SharedFileSelector::release_host(HostId h) {
  ensure_open([this, h](Status s) {
    if (!s.is_ok()) return;
    Status se = host_.fs().seek(claim_stream_, h * kLoadFileRecord);
    SPRITE_CHECK(se.is_ok());
    host_.fs().write(claim_stream_, pad_record("-1 0"),
                     [](util::Result<std::int64_t>) {});
  });
}

}  // namespace sprite::ls
