// RPC wire messages for the kLoadShare service (host-to-host protocols used
// by the distributed selection architectures and by reservation).
#pragma once

#include <cstdint>
#include <vector>

#include "rpc/rpc.h"
#include "sim/ids.h"
#include "sim/time.h"

namespace sprite::ls {

enum class LsOp : int {
  kGossip = 1,   // MOSIX-style load vector exchange
  kReserve,      // claim an idle host (refused if busy/reserved)
  kRelease,      // give a reserved host back
  kQueryIdle,    // multicast: who is idle?
  kOffer,        // unicast answer to a query
};

// One host's load information as known by some host.
struct HostLoad {
  sim::HostId host = sim::kInvalidHost;
  double load = 0.0;
  bool idle = false;
  sim::Time stamped;  // simulated time the info was produced
};

struct GossipReq : rpc::Message {
  std::vector<HostLoad> entries;
  std::int64_t wire_bytes() const override {
    return 16 + static_cast<std::int64_t>(entries.size()) * 24;
  }
};

struct ReserveReq : rpc::Message {
  sim::HostId requester = sim::kInvalidHost;
  std::int64_t wire_bytes() const override { return 16; }
};

struct QueryIdleReq : rpc::Message {
  sim::HostId requester = sim::kInvalidHost;
  std::int64_t seq = 0;
  std::int64_t wire_bytes() const override { return 24; }
};

struct OfferReq : rpc::Message {
  sim::HostId host = sim::kInvalidHost;
  std::int64_t seq = 0;
  double load = 0.0;
  std::int64_t wire_bytes() const override { return 32; }
};

}  // namespace sprite::ls
