#include "loadshare/central.h"

#include <cstdio>
#include <sstream>

#include "kern/cluster.h"
#include "loadshare/node.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::ls {

using fs::Bytes;
using sim::HostId;
using sim::Time;
using util::Err;
using util::Status;

namespace {

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string to_string(const Bytes& b) { return std::string(b.begin(), b.end()); }

}  // namespace

// ---------------------------------------------------------------------------
// MigdDaemon
// ---------------------------------------------------------------------------

MigdDaemon::MigdDaemon(kern::Host& host) : host_(host) {}

util::Status MigdDaemon::install(const std::string& pdev_path) {
  const int tag = host_.pdev().register_server(
      [this](const Bytes& req,
             std::function<void(util::Result<Bytes>)> reply) {
        reply(to_bytes(handle(to_string(req))));
      });
  auto* server = host_.cluster().file_server().fs_server();
  server->mkdir_p("/hosts");
  auto r = server->create_pdev(pdev_path, host_.id(), tag);
  return r.is_ok() ? Status::ok() : r.status();
}

void MigdDaemon::restart() {
  table_.clear();
  grants_by_requester_.clear();
  last_request_.clear();
  revocations_.clear();
}

void MigdDaemon::peer_crashed(sim::HostId h) {
  table_.erase(h);
  for (auto& [w, info] : table_)
    if (info.assigned_to == h) info.assigned_to = sim::kInvalidHost;
  grants_by_requester_.erase(h);
  last_request_.erase(h);
  revocations_.erase(h);
}

void MigdDaemon::collect_peer_interest(std::vector<sim::HostId>& out) const {
  for (const auto& [w, n] : grants_by_requester_)
    if (n > 0) out.push_back(w);
  for (const auto& [w, info] : table_)
    if (info.assigned_to != sim::kInvalidHost) out.push_back(w);
}

bool MigdDaemon::fresh(const HostInfo& info, Time now) const {
  return now - info.last_announce <=
         host_.cluster().costs().ls_update_period * 3.0;
}

int MigdDaemon::idle_unassigned(Time now) const {
  int n = 0;
  for (const auto& [h, info] : table_) {
    if (info.idle && info.assigned_to == sim::kInvalidHost &&
        fresh(info, now))
      ++n;
  }
  return n;
}

std::string MigdDaemon::handle(const std::string& request) {
  std::istringstream in(request);
  std::string op;
  in >> op;
  if (op == "ANN") {
    long host;
    int idle;
    double load;
    in >> host >> idle >> load;
    ++stats_.announcements;
    HostInfo& info = table_[static_cast<HostId>(host)];
    info.idle = idle != 0;
    info.load = load;
    info.last_announce = host_.cluster().sim().now();
    return "OK";
  }
  if (op == "REQ") {
    long requester;
    int n;
    in >> requester >> n;
    return handle_req(static_cast<HostId>(requester), n);
  }
  if (op == "REL") {
    long requester, h;
    in >> requester >> h;
    ++stats_.releases;
    auto it = table_.find(static_cast<HostId>(h));
    if (it != table_.end() &&
        it->second.assigned_to == static_cast<HostId>(requester)) {
      it->second.assigned_to = sim::kInvalidHost;
      auto git = grants_by_requester_.find(static_cast<HostId>(requester));
      if (git != grants_by_requester_.end() && git->second > 0) --git->second;
    }
    return "OK";
  }
  return "ERR";
}

std::string MigdDaemon::handle_req(HostId requester, int n) {
  ++stats_.requests;
  const Time now = host_.cluster().sim().now();
  last_request_[requester] = now;

  // Fair allocation under contention: a requester may hold at most
  // ceil(supply / active requesters) hosts, with a floor of one.
  int active = 0;
  for (const auto& [r, t] : last_request_) {
    const bool recent = now - t <= Time::sec(60);
    const bool holding = grants_by_requester_.count(r) != 0 &&
                         grants_by_requester_.at(r) > 0;
    if (recent || holding) ++active;
  }
  int supply = idle_unassigned(now);
  for (const auto& [r, g] : grants_by_requester_) supply += g;
  const int cap = std::max(1, (supply + active - 1) / std::max(1, active));

  int& held = grants_by_requester_[requester];
  std::string out = "G";
  int granted = 0;
  for (auto& [h, info] : table_) {
    if (granted >= n || held >= cap) break;
    if (!info.idle || info.assigned_to != sim::kInvalidHost ||
        !fresh(info, now))
      continue;
    if (h == requester) continue;  // do not hand a requester itself
    info.assigned_to = requester;
    ++held;
    ++granted;
    ++stats_.grants;
    out += " " + std::to_string(h);
  }

  // Fair recall: if supply ran out but another requester holds more than
  // its share, reclaim the excess for this requester. The previous holder
  // learns via the R-list in its next request (cooperative recall, as
  // pmake practised with migd).
  while (granted < n && held < cap) {
    sim::HostId victim_requester = sim::kInvalidHost;
    int most = cap;
    for (const auto& [r, g] : grants_by_requester_) {
      if (r != requester && g > most) {
        most = g;
        victim_requester = r;
      }
    }
    if (victim_requester == sim::kInvalidHost) break;
    // Take one of the victim's hosts (the highest-numbered, arbitrarily).
    sim::HostId taken = sim::kInvalidHost;
    for (auto it = table_.rbegin(); it != table_.rend(); ++it) {
      if (it->second.assigned_to == victim_requester &&
          it->first != requester) {
        taken = it->first;
        break;
      }
    }
    if (taken == sim::kInvalidHost) break;
    table_[taken].assigned_to = requester;
    --grants_by_requester_[victim_requester];
    revocations_[victim_requester].push_back(taken);
    ++held;
    ++granted;
    ++stats_.grants;
    out += " " + std::to_string(taken);
  }

  if (granted == 0) ++stats_.denials;

  // Append any pending revocations addressed to this requester.
  auto rit = revocations_.find(requester);
  if (rit != revocations_.end() && !rit->second.empty()) {
    out += " R";
    for (sim::HostId h : rit->second) out += " " + std::to_string(h);
    rit->second.clear();
  }
  return out;
}

// ---------------------------------------------------------------------------
// MigdAnnouncer
// ---------------------------------------------------------------------------

MigdAnnouncer::MigdAnnouncer(kern::Host& host, LoadShareNode& node,
                             std::string pdev_path)
    : host_(host), node_(node), path_(std::move(pdev_path)) {}

void MigdAnnouncer::ensure_open(std::function<void()> then) {
  if (stream_) {
    then();
    return;
  }
  if (opening_) return;  // a periodic retry will come around again
  opening_ = true;
  host_.fs().open(path_, fs::OpenFlags::read_write(),
                  [this, then = std::move(then)](
                      util::Result<fs::StreamPtr> r) {
                    opening_ = false;
                    if (!r.is_ok()) return;
                    stream_ = *r;
                    then();
                  });
}

void MigdAnnouncer::reset() {
  stream_ = nullptr;
  // An open in flight when the host crashed lost its callback with the
  // kernel; clear the guard so the next announcement can open again.
  opening_ = false;
}

void MigdAnnouncer::start() {
  host_.cluster().sim().every(host_.cluster().costs().ls_update_period,
                              [this] { announce_now(); });
}

void MigdAnnouncer::announce_now() {
  ensure_open([this] {
    char buf[96];
    std::snprintf(buf, sizeof buf, "ANN %d %d %.3f", host_.id(),
                  node_.is_idle() && !node_.reserved() ? 1 : 0, node_.load());
    host_.fs().pdev_call(stream_, to_bytes(buf),
                         [this](util::Result<Bytes> r) {
                           // A failed call usually means migd's host rebooted
                           // and the pdev was reinstalled under a new tag;
                           // reopen on the next announcement.
                           if (!r.is_ok()) stream_ = nullptr;
                         });
  });
}

// ---------------------------------------------------------------------------
// CentralSelector
// ---------------------------------------------------------------------------

CentralSelector::CentralSelector(
    kern::Host& host, std::string pdev_path,
    std::function<bool(sim::HostId)> ground_truth_idle)
    : host_(host),
      path_(std::move(pdev_path)),
      ground_truth_(std::move(ground_truth_idle)) {
  bind_metrics(host_.cluster().sim().trace(), host_.id());
}

void CentralSelector::ensure_open(std::function<void(Status)> then) {
  if (stream_) return then(Status::ok());
  host_.fs().open(path_, fs::OpenFlags::read_write(),
                  [this, then = std::move(then)](
                      util::Result<fs::StreamPtr> r) {
                    if (!r.is_ok()) return then(r.status());
                    stream_ = *r;
                    then(Status::ok());
                  });
}

void CentralSelector::request_hosts(int n, GrantCb cb) {
  note_request();
  const Time start = host_.cluster().sim().now();
  ensure_open([this, n, start, cb = std::move(cb)](Status s) mutable {
    if (!s.is_ok()) return cb({});
    const std::string req =
        "REQ " + std::to_string(host_.id()) + " " + std::to_string(n);
    host_.fs().pdev_call(
        stream_, to_bytes(req),
        [this, start, cb = std::move(cb)](util::Result<Bytes> r) {
          std::vector<HostId> hosts;
          if (!r.is_ok()) stream_ = nullptr;  // reopen next time (migd moved)
          if (r.is_ok()) {
            std::istringstream in(to_string(*r));
            std::string tok;
            in >> tok;  // leading "G"
            bool revoking = false;
            while (in >> tok) {
              if (tok == "R") {
                revoking = true;
                continue;
              }
              const auto h = static_cast<HostId>(std::stol(tok));
              if (revoking) {
                revoked_.push_back(h);
              } else {
                hosts.push_back(h);
              }
            }
          }
          note_grant_done(static_cast<std::int64_t>(hosts.size()),
                          (host_.cluster().sim().now() - start).ms());
          if (ground_truth_) {
            for (HostId h : hosts)
              if (!ground_truth_(h)) note_bad_grant();
          }
          cb(std::move(hosts));
        });
  });
}

void CentralSelector::release_host(HostId h) {
  ensure_open([this, h](Status s) {
    if (!s.is_ok()) return;
    const std::string req =
        "REL " + std::to_string(host_.id()) + " " + std::to_string(h);
    host_.fs().pdev_call(stream_, to_bytes(req),
                         [this](util::Result<Bytes> r) {
                           if (!r.is_ok()) stream_ = nullptr;
                         });
  });
}

}  // namespace sprite::ls
