#include "loadshare/facility.h"

#include "kern/cluster.h"
#include "util/assert.h"

namespace sprite::ls {

using sim::HostId;

const char* arch_name(Arch a) {
  switch (a) {
    case Arch::kCentral: return "central-migd";
    case Arch::kSharedFile: return "shared-file";
    case Arch::kProbabilistic: return "probabilistic";
    case Arch::kMulticast: return "multicast";
  }
  return "?";
}

namespace {
constexpr const char* kMigdPath = "/hosts/migd";
constexpr const char* kLoadFilePath = "/hosts/loadfile";
constexpr const char* kClaimFilePath = "/hosts/claims";
}  // namespace

Facility::Facility(kern::Cluster& cluster, Arch arch)
    : cluster_(cluster), arch_(arch) {
  const auto workstations = cluster_.workstations();
  auto ground_truth = [this](HostId h) { return actually_idle(h); };

  for (HostId w : workstations) {
    auto n = std::make_unique<LoadShareNode>(cluster_.host(w));
    n->register_services();
    nodes_.emplace(w, std::move(n));
  }

  switch (arch_) {
    case Arch::kCentral: {
      // The daemon runs on file server 0 (a host that is always up).
      daemon_ = std::make_unique<MigdDaemon>(cluster_.file_server());
      daemon_host_ = cluster_.file_server().id();
      SPRITE_CHECK(daemon_->install(kMigdPath).is_ok());
      for (HostId w : workstations) {
        auto ann = std::make_unique<MigdAnnouncer>(cluster_.host(w),
                                                   *nodes_.at(w), kMigdPath);
        ann->start();
        MigdAnnouncer* ann_raw = ann.get();
        eviction_hooks_[w] = [ann_raw] { ann_raw->announce_now(); };
        nodes_.at(w)->enable_autoeviction(eviction_hooks_[w]);
        announcers_.emplace(w, std::move(ann));
        selectors_.emplace(
            w, std::make_unique<CentralSelector>(cluster_.host(w), kMigdPath,
                                                 ground_truth));
      }
      break;
    }
    case Arch::kSharedFile: {
      cluster_.file_server().fs_server()->mkdir_p("/hosts");
      for (HostId w : workstations) {
        auto upd = std::make_unique<LoadFileUpdater>(
            cluster_.host(w), *nodes_.at(w), kLoadFilePath);
        upd->start();
        LoadFileUpdater* upd_raw = upd.get();
        eviction_hooks_[w] = [upd_raw] { upd_raw->update_now(); };
        nodes_.at(w)->enable_autoeviction(eviction_hooks_[w]);
        updaters_.emplace(w, std::move(upd));
        selectors_.emplace(
            w, std::make_unique<SharedFileSelector>(
                   cluster_.host(w), kLoadFilePath, kClaimFilePath,
                   static_cast<int>(cluster_.num_hosts()), ground_truth));
      }
      break;
    }
    case Arch::kProbabilistic: {
      for (HostId w : workstations) {
        nodes_.at(w)->start_gossip(workstations);
        eviction_hooks_[w] = nullptr;
        nodes_.at(w)->enable_autoeviction();
        selectors_.emplace(w, std::make_unique<ProbabilisticSelector>(
                                  cluster_.host(w), *nodes_.at(w),
                                  ground_truth));
      }
      break;
    }
    case Arch::kMulticast: {
      for (HostId w : workstations) {
        nodes_.at(w)->enable_multicast_responder();
        eviction_hooks_[w] = nullptr;
        nodes_.at(w)->enable_autoeviction();
        selectors_.emplace(
            w, std::make_unique<MulticastSelector>(cluster_.host(w),
                                                   *nodes_.at(w),
                                                   ground_truth));
      }
      break;
    }
  }

  // Survivors learn of peer deaths from their own host monitors, not from
  // the simulator: each workstation's verdicts clear ghost reservations and
  // stale gossip, and migd's verdicts free grants held by dead requesters.
  for (HostId w : workstations) {
    LoadShareNode* node_raw = nodes_.at(w).get();
    cluster_.host(w).monitor().add_peer_down_observer(
        [node_raw](HostId peer) { node_raw->peer_crashed(peer); });
    cluster_.host(w).monitor().add_interest_provider(
        [node_raw](std::vector<HostId>& out) {
          if (node_raw->reserved()) out.push_back(node_raw->reserved_by());
        });
  }
  if (daemon_) {
    MigdDaemon* daemon_raw = daemon_.get();
    cluster_.host(daemon_host_).monitor().add_peer_down_observer(
        [daemon_raw](HostId peer) { daemon_raw->peer_crashed(peer); });
    cluster_.host(daemon_host_).monitor().add_interest_provider(
        [daemon_raw](std::vector<HostId>& out) {
          daemon_raw->collect_peer_interest(out);
        });
  }

  cluster_.add_crash_observer([this](HostId h) { on_crash(h); });
  cluster_.add_reboot_observer([this](HostId h) { on_reboot(h); });
}

void Facility::on_crash(HostId h) {
  // Only the crashed host's own user-level state is torn down here (it died
  // with the kernel). Survivors are NOT told — their monitors must discover
  // the death in-protocol.
  if (auto it = nodes_.find(h); it != nodes_.end()) it->second->crash_reset();
  if (auto it = selectors_.find(h); it != selectors_.end())
    it->second->reset();
  if (auto it = announcers_.find(h); it != announcers_.end())
    it->second->reset();
  if (auto it = updaters_.find(h); it != updaters_.end()) it->second->reset();
  if (daemon_ && h == daemon_host_) {
    // The daemon process died with its host. Its table is rebuilt from
    // announcements after the reinstall in on_reboot(); meanwhile
    // requesters' pdev calls fail and they retry (Sprite §6.3.2).
    daemon_->restart();
  }
}

void Facility::on_reboot(HostId h) {
  if (daemon_ && h == daemon_host_) {
    // Reinstall the pseudo-device: the rebooted kernel lost the server
    // registration, and create_pdev upserts the new tag into the (possibly
    // surviving) file-server node.
    SPRITE_CHECK(daemon_->install(kMigdPath).is_ok());
  }
  // Host::crash_reset cleared the input observer; re-arm owner protection.
  if (auto it = nodes_.find(h); it != nodes_.end())
    it->second->enable_autoeviction(eviction_hooks_[h]);
}

LoadShareNode& Facility::node(HostId h) { return *nodes_.at(h); }

HostSelector& Facility::selector(HostId h) { return *selectors_.at(h); }

bool Facility::actually_idle(HostId h) {
  auto it = nodes_.find(h);
  return it != nodes_.end() && it->second->is_idle();
}

int Facility::idle_count() {
  int n = 0;
  for (auto& [h, node] : nodes_) {
    if (node->is_idle() && !node->reserved()) ++n;
  }
  return n;
}

HostSelector::Stats Facility::aggregate_stats() const {
  HostSelector::Stats agg;
  for (const auto& [h, sel] : selectors_) {
    const auto& s = sel->stats();
    agg.requests += s.requests;
    agg.hosts_granted += s.hosts_granted;
    agg.empty_grants += s.empty_grants;
    agg.bad_grants += s.bad_grants;
  }
  return agg;
}

}  // namespace sprite::ls
