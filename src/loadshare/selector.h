// HostSelector: the client-side interface to a host-selection architecture.
//
// Four implementations reproduce the design space of thesis chapter 6:
// central server (migd), shared file, distributed probabilistic (MOSIX) and
// multicast query. All expose the same request/release API so experiment E6
// can compare them under identical request loads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/ids.h"
#include "sim/time.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace sprite::ls {

class HostSelector {
 public:
  using GrantCb = std::function<void(std::vector<sim::HostId>)>;

  virtual ~HostSelector() = default;

  // Asks for up to `n` idle hosts. The callback fires exactly once with the
  // granted hosts (possibly empty — callers poll again later; none of the
  // architectures block, because a blocked reply cannot ride an RPC).
  virtual void request_hosts(int n, GrantCb cb) = 0;

  // Returns a granted host.
  virtual void release_host(sim::HostId h) = 0;

  // Hosts the facility reclaimed from this requester for fairness
  // (cooperative recall). The caller must stop dispatching to them; they do
  // NOT need to be released. Default: none (only the central architecture
  // recalls).
  virtual std::vector<sim::HostId> take_revoked() { return {}; }

  // Drops cached soft state (open streams to the facility's files or
  // pseudo-device) after the selector's host crashed and rebooted; the next
  // request reopens from scratch. Default: nothing cached.
  virtual void reset() {}

  // Registry-backed (trace/trace.h); the struct is a refreshed view. The
  // grant-latency distribution is kept locally (quantiles) and mirrored into
  // a registry histogram when bound.
  struct Stats {
    std::int64_t requests = 0;
    std::int64_t hosts_granted = 0;
    std::int64_t empty_grants = 0;
    // A granted host that was in fact not idle (stale information) — the
    // failure mode distributed state suffers from.
    std::int64_t bad_grants = 0;
    util::Distribution grant_latency_ms;
  };
  const Stats& stats() const {
    if (c_requests_) {
      stats_view_.requests = c_requests_->value();
      stats_view_.hosts_granted = c_granted_->value();
      stats_view_.empty_grants = c_empty_->value();
      stats_view_.bad_grants = c_bad_->value();
    }
    return stats_view_;
  }

 protected:
  // Registers the selector's metrics under `ls.select.*`, attributed to the
  // requesting host. Subclasses call this from their constructor; an unbound
  // selector still counts into the plain struct.
  void bind_metrics(trace::Registry& tr, sim::HostId host) {
    reg_ = &tr;
    host_id_ = host;
    c_requests_ = &tr.counter("ls.select.requested", host);
    c_granted_ = &tr.counter("ls.select.host_granted", host);
    c_empty_ = &tr.counter("ls.select.empty_grant", host);
    c_bad_ = &tr.counter("ls.select.bad_grant", host);
    h_latency_ = &tr.histogram("ls.select.grant_ms",
                               trace::default_latency_bounds_ms(), host);
  }

  void note_request() {
    if (c_requests_) c_requests_->inc();
    else ++stats_view_.requests;
  }
  // One grant decision finished: `n` hosts after `ms` of selection latency.
  void note_grant_done(std::int64_t n, double ms) {
    stats_view_.grant_latency_ms.add(ms);
    if (c_granted_) {
      c_granted_->inc(n);
      if (n == 0) c_empty_->inc();
      h_latency_->record(ms);
      if (reg_->tracing())
        reg_->instant("ls", n == 0 ? "grant empty" : "hosts granted",
                      host_id_, -1, {{"count", std::to_string(n)}});
    } else {
      stats_view_.hosts_granted += n;
      if (n == 0) ++stats_view_.empty_grants;
    }
  }
  void note_bad_grant() {
    if (c_bad_) c_bad_->inc();
    else ++stats_view_.bad_grants;
  }

 private:
  trace::Registry* reg_ = nullptr;
  sim::HostId host_id_ = sim::kInvalidHost;
  trace::Counter* c_requests_ = nullptr;
  trace::Counter* c_granted_ = nullptr;
  trace::Counter* c_empty_ = nullptr;
  trace::Counter* c_bad_ = nullptr;
  trace::LatencyHistogram* h_latency_ = nullptr;
  mutable Stats stats_view_;
};

}  // namespace sprite::ls
