// HostSelector: the client-side interface to a host-selection architecture.
//
// Four implementations reproduce the design space of thesis chapter 6:
// central server (migd), shared file, distributed probabilistic (MOSIX) and
// multicast query. All expose the same request/release API so experiment E6
// can compare them under identical request loads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/ids.h"
#include "sim/time.h"
#include "util/stats.h"

namespace sprite::ls {

class HostSelector {
 public:
  using GrantCb = std::function<void(std::vector<sim::HostId>)>;

  virtual ~HostSelector() = default;

  // Asks for up to `n` idle hosts. The callback fires exactly once with the
  // granted hosts (possibly empty — callers poll again later; none of the
  // architectures block, because a blocked reply cannot ride an RPC).
  virtual void request_hosts(int n, GrantCb cb) = 0;

  // Returns a granted host.
  virtual void release_host(sim::HostId h) = 0;

  // Hosts the facility reclaimed from this requester for fairness
  // (cooperative recall). The caller must stop dispatching to them; they do
  // NOT need to be released. Default: none (only the central architecture
  // recalls).
  virtual std::vector<sim::HostId> take_revoked() { return {}; }

  struct Stats {
    std::int64_t requests = 0;
    std::int64_t hosts_granted = 0;
    std::int64_t empty_grants = 0;
    // A granted host that was in fact not idle (stale information) — the
    // failure mode distributed state suffers from.
    std::int64_t bad_grants = 0;
    util::Distribution grant_latency_ms;
  };
  const Stats& stats() const { return stats_; }

 protected:
  Stats stats_;
};

}  // namespace sprite::ls
