#include "loadshare/distributed.h"

#include <algorithm>

#include "kern/cluster.h"
#include "util/assert.h"

namespace sprite::ls {

using rpc::Reply;
using rpc::ServiceId;
using sim::HostId;
using sim::Time;
using util::Status;

// ---------------------------------------------------------------------------
// ProbabilisticSelector
// ---------------------------------------------------------------------------

ProbabilisticSelector::ProbabilisticSelector(
    kern::Host& host, LoadShareNode& node,
    std::function<bool(sim::HostId)> ground_truth_idle)
    : host_(host), node_(node), ground_truth_(std::move(ground_truth_idle)) {
  bind_metrics(host_.cluster().sim().trace(), host_.id());
}

void ProbabilisticSelector::request_hosts(int n, GrantCb cb) {
  note_request();
  const Time start = host_.cluster().sim().now();
  const Time now = start;
  const Time max_age = host_.cluster().costs().ls_entry_max_age;

  // Purely local decision from the (possibly stale) gossip vector.
  struct Cand {
    HostId host;
    double load;
  };
  std::vector<Cand> cands;
  for (const auto& [h, e] : node_.load_vector()) {
    if (h == host_.id() || !e.idle) continue;
    if (now - e.stamped > max_age) continue;
    cands.push_back({h, e.load});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.load < b.load; });

  auto order = std::make_shared<std::vector<HostId>>();
  for (const auto& c : cands) order->push_back(c.host);
  auto got = std::make_shared<std::vector<HostId>>();
  try_reserve(order, 0, n, got, start, std::move(cb));
}

void ProbabilisticSelector::try_reserve(
    std::shared_ptr<std::vector<HostId>> cands, std::size_t i, int want,
    std::shared_ptr<std::vector<HostId>> got, Time start, GrantCb cb) {
  if (static_cast<int>(got->size()) >= want || i >= cands->size()) {
    note_grant_done(static_cast<std::int64_t>(got->size()),
                    (host_.cluster().sim().now() - start).ms());
    cb(*got);
    return;
  }
  const HostId target = (*cands)[i];
  auto body = std::make_shared<ReserveReq>();
  body->requester = host_.id();
  host_.rpc().call(
      target, ServiceId::kLoadShare, static_cast<int>(LsOp::kReserve), body,
      [this, cands, i, want, got, start, target,
       cb = std::move(cb)](util::Result<Reply> r) mutable {
        if (r.is_ok() && r->status.is_ok()) {
          got->push_back(target);
        } else {
          // Our vector said idle; the host disagreed — stale information.
          note_bad_grant();
        }
        try_reserve(cands, i + 1, want, got, start, std::move(cb));
      });
}

void ProbabilisticSelector::release_host(HostId h) {
  auto body = std::make_shared<ReserveReq>();
  body->requester = host_.id();
  host_.rpc().call(h, ServiceId::kLoadShare,
                   static_cast<int>(LsOp::kRelease), body,
                   [](util::Result<Reply>) {});
}

// ---------------------------------------------------------------------------
// MulticastSelector
// ---------------------------------------------------------------------------

MulticastSelector::MulticastSelector(
    kern::Host& host, LoadShareNode& node,
    std::function<bool(sim::HostId)> ground_truth_idle)
    : host_(host), node_(node), ground_truth_(std::move(ground_truth_idle)) {
  bind_metrics(host_.cluster().sim().trace(), host_.id());
  node_.set_offer_sink([this](const OfferReq& offer) {
    if (offer.seq != current_seq_) return;  // stale query
    offers_.push_back(offer.host);
  });
}

void MulticastSelector::request_hosts(int n, GrantCb cb) {
  note_request();
  const Time start = host_.cluster().sim().now();
  current_seq_ = next_seq_++;
  offers_.clear();

  auto body = std::make_shared<QueryIdleReq>();
  body->requester = host_.id();
  body->seq = current_seq_;
  host_.rpc().multicast(ServiceId::kLoadShare,
                        static_cast<int>(LsOp::kQueryIdle), body);

  // Collect offers for the backoff window plus slack, then reserve the
  // earliest respondents.
  const Time window =
      host_.cluster().costs().ls_multicast_backoff + Time::msec(15);
  host_.cluster().sim().after(window, [this, n, start, cb = std::move(cb)] {
    current_seq_ = 0;  // stop collecting
    auto offers = std::make_shared<std::vector<HostId>>(std::move(offers_));
    offers_.clear();
    auto got = std::make_shared<std::vector<HostId>>();
    reserve_offers(offers, 0, n, got, start, std::move(cb));
  });
}

void MulticastSelector::reserve_offers(
    std::shared_ptr<std::vector<HostId>> offers, std::size_t i, int want,
    std::shared_ptr<std::vector<HostId>> got, Time start, GrantCb cb) {
  if (static_cast<int>(got->size()) >= want || i >= offers->size()) {
    note_grant_done(static_cast<std::int64_t>(got->size()),
                    (host_.cluster().sim().now() - start).ms());
    cb(*got);
    return;
  }
  const HostId target = (*offers)[i];
  auto body = std::make_shared<ReserveReq>();
  body->requester = host_.id();
  host_.rpc().call(
      target, ServiceId::kLoadShare, static_cast<int>(LsOp::kReserve), body,
      [this, offers, i, want, got, start, target,
       cb = std::move(cb)](util::Result<Reply> r) mutable {
        if (r.is_ok() && r->status.is_ok()) {
          got->push_back(target);
        } else {
          // Another requester's query raced ours to this host.
          note_bad_grant();
        }
        reserve_offers(offers, i + 1, want, got, start, std::move(cb));
      });
}

void MulticastSelector::release_host(HostId h) {
  auto body = std::make_shared<ReserveReq>();
  body->requester = host_.id();
  host_.rpc().call(h, ServiceId::kLoadShare,
                   static_cast<int>(LsOp::kRelease), body,
                   [](util::Result<Reply>) {});
}

}  // namespace sprite::ls
