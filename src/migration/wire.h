// RPC wire messages for the kMigration service.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fs/client.h"
#include "proc/pcb.h"
#include "proc/program.h"
#include "rpc/rpc.h"
#include "vm/vm.h"

namespace sprite::mig {

enum class MigOp : int {
  kInit = 1,       // version handshake; target allocates a pending slot
  kPageData,       // whole-copy / pre-copy page payload
  kTransfer,       // encapsulated process state; target resumes the process
  kFetchPages,     // copy-on-reference pull from the source
  kAbort,          // source gave up; target drops the pending slot
};

struct InitReq : rpc::Message {
  int version = 0;
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t wire_bytes() const override { return 24; }
};

struct InitRep : rpc::Message {
  int version = 0;
  bool accepted = false;
  std::int64_t wire_bytes() const override { return 16; }
};

// Bulk page payload; only the byte count matters (see DESIGN.md on page
// contents).
struct PageDataReq : rpc::Message {
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t bytes = 0;
  std::int64_t wire_bytes() const override { return 16 + bytes; }
};

// The Program object cannot be copied through a "wire", so it rides in a
// shared box the destination moves it out of. In a real kernel this is the
// register set plus user memory contents; its transfer cost is modelled by
// the VM strategy, and the box stands in for the bits.
struct ProgramBox {
  std::unique_ptr<proc::Program> program;
};

struct TransferReq : rpc::Message {
  proc::Pid pid = proc::kInvalidPid;
  proc::Pid ppid = proc::kInvalidPid;
  sim::HostId home = sim::kInvalidHost;
  std::string exe_path;
  std::vector<std::string> args;
  proc::ProcessView view;
  sim::Time spawned_at;
  sim::Time remaining_compute;
  sim::Time pause_remaining;
  bool blocked_in_wait = false;
  bool kill_pending = false;
  int kill_sig = 0;
  int next_fd = 3;
  // Incarnation epoch the process runs under (see Pcb::incarnation). The
  // target's kUpdateLocation claim carries it, so a migration racing a
  // checkpoint restart loses cleanly (kStale) instead of forking the pid.
  std::int64_t incarnation = 0;
  // Remote-UNIX comparator: the process's file calls are forwarded home
  // (no streams ride along; they stayed at home).
  bool forward_file_calls = false;

  // Streams, already re-attributed at their I/O servers by the source.
  std::vector<std::pair<int, fs::ExportedStream>> streams;

  // Address space. has_space is false for exec-time migration (the target
  // builds a fresh image from exe_path).
  bool has_space = false;
  vm::SpaceDescriptor space;
  // Copy-on-reference: the source retains the memory image and serves
  // kFetchPages for it.
  bool cor_source_resident = false;

  std::shared_ptr<ProgramBox> box;  // null for exec-time migration

  // PCB + per-stream encapsulation sizes; the page-table bitmaps ride along.
  std::int64_t pcb_bytes = 0;
  std::int64_t wire_bytes() const override {
    std::int64_t n = pcb_bytes;
    n += static_cast<std::int64_t>(streams.size()) * 256;
    if (has_space) n += space.wire_bytes();
    for (const auto& a : args) n += static_cast<std::int64_t>(a.size());
    return n;
  }
};

struct FetchPagesReq : rpc::Message {
  std::int64_t asid = 0;
  vm::Segment seg = vm::Segment::kHeap;
  std::int64_t first = 0;
  std::int64_t count = 0;
  std::int64_t wire_bytes() const override { return 40; }
};

struct FetchPagesRep : rpc::Message {
  std::int64_t bytes = 0;  // count * page_size of payload
  std::int64_t wire_bytes() const override { return 16 + bytes; }
};

struct AbortReq : rpc::Message {
  proc::Pid pid = proc::kInvalidPid;
  std::int64_t wire_bytes() const override { return 16; }
};

}  // namespace sprite::mig
