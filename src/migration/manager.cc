#include "migration/manager.h"

#include <algorithm>

#include "ckpt/manager.h"
#include "kern/cluster.h"
#include "util/assert.h"
#include "util/log.h"

namespace sprite::mig {

using proc::Pcb;
using proc::PcbPtr;
using proc::Pid;
using rpc::Reply;
using rpc::Request;
using rpc::ServiceId;
using sim::HostId;
using sim::JobClass;
using sim::Time;
using util::Err;
using util::Status;

const char* strategy_name(VmStrategy s) {
  switch (s) {
    case VmStrategy::kSpriteFlush: return "sprite-flush";
    case VmStrategy::kWholeCopy: return "whole-copy";
    case VmStrategy::kPreCopy: return "pre-copy";
    case VmStrategy::kCopyOnRef: return "copy-on-reference";
  }
  return "?";
}

const char* mig_stage_name(MigStage s) {
  switch (s) {
    case MigStage::kInit: return "init";
    case MigStage::kFreeze: return "freeze";
    case MigStage::kVmTransfer: return "vm-transfer";
    case MigStage::kStreams: return "streams";
    case MigStage::kResume: return "resume";
  }
  return "?";
}

MigrationManager::MigrationManager(kern::Host& host)
    : host_(host), self_(host.id()) {
  trace::Registry& tr = host_.cluster().sim().trace();
  c_out_ = &tr.counter("mig.out.completed", self_);
  c_in_ = &tr.counter("mig.in.completed", self_);
  c_failed_ = &tr.counter("mig.out.failed", self_);
  c_evictions_ = &tr.counter("mig.eviction.completed", self_);
  c_cor_pages_ = &tr.counter("mig.cor_page.served", self_);
  c_cor_kills_ = &tr.counter("mig.cor.killed_source_crash", self_);
  h_total_ms_ = &tr.histogram("mig.migration.total_ms",
                              trace::default_latency_bounds_ms(), self_);
  h_freeze_ms_ = &tr.histogram("mig.migration.freeze_ms",
                               trace::default_latency_bounds_ms(), self_);
}

const MigrationManager::Stats& MigrationManager::stats() const {
  stats_view_.out = c_out_->value();
  stats_view_.in = c_in_->value();
  stats_view_.failed = c_failed_->value();
  stats_view_.evictions = c_evictions_->value();
  stats_view_.cor_pages_served = c_cor_pages_->value();
  return stats_view_;
}

void MigrationManager::note_success(const Outgoing& og) {
  const MigrationRecord& rec = og.rec;
  h_total_ms_->record(rec.total_time().ms());
  h_freeze_ms_->record(rec.freeze_time().ms());

  trace::Registry& tr = host_.cluster().sim().trace();
  if (!tr.tracing()) return;
  const auto pid = static_cast<std::int64_t>(rec.pid);
  // The pipeline is continuation-passing, so the lifecycle spans are emitted
  // retroactively from the record's timestamps — the thesis's freeze-time
  // breakdown (init / vm / streams / resume) falls straight out of the trace.
  // The root span reuses the id reserved at migrate() time, so the live
  // spans (RPCs, VM flush, demand paging) recorded during the pipeline are
  // already its descendants.
  std::uint64_t trace_id = og.ctx.trace_id;
  if (trace_id == 0) trace_id = tr.new_trace().trace_id;
  const trace::SpanId root = tr.span_at(
      "mig",
      rec.exec_time
          ? std::string("migrate exec-time")
          : std::string("migrate ") + strategy_name(rec.strategy),
      rec.from, pid, rec.started, rec.resumed_at,
      {{"to", std::to_string(rec.to)},
       {"pages_moved", std::to_string(rec.pages_moved)},
       {"pages_flushed", std::to_string(rec.pages_flushed)},
       {"precopy_rounds", std::to_string(rec.precopy_rounds)},
       {"streams", std::to_string(rec.streams_moved)}},
      trace::Context{trace_id, 0}, og.root_span);
  const trace::Context child{trace_id, root};
  tr.span_at("mig", "init handshake", rec.from, pid, rec.started,
             rec.init_done_at, {}, child);
  tr.span_at("mig", std::string("vm ") + strategy_name(rec.strategy),
             rec.from, pid, rec.init_done_at, rec.vm_done_at, {}, child);
  tr.span_at("mig", "streams re-attribute", rec.from, pid, rec.vm_done_at,
             rec.streams_done_at, {}, child);
  tr.span_at("mig", "transfer+resume", rec.from, pid, rec.streams_done_at,
             rec.resumed_at, {}, child);
  // Overlay spanning several pipeline stages: tagged with the trace but
  // deliberately parentless so tree analyses do not double-count it.
  tr.span_at("mig", "frozen", rec.from, pid, rec.frozen_at, rec.resumed_at,
             {}, trace::Context{trace_id, 0});
}

void MigrationManager::register_services() {
  host_.rpc().register_service(
      ServiceId::kMigration,
      [this](HostId src, const Request& req, std::function<void(Reply)> r) {
        handle_rpc(src, req, std::move(r));
      });
}

const MigrationRecord& MigrationManager::last_record() const {
  SPRITE_CHECK_MSG(!records_.empty(), "no migrations recorded");
  return records_.back();
}

void MigrationManager::notify_stage(Pid pid, MigStage s) {
  host_.cluster().sim().trace().flight_note(
      "mig.stage", mig_stage_name(s), self_, static_cast<std::int64_t>(pid));
  if (stage_observers_.empty()) return;
  // Copy: an observer may crash hosts, which mutates observer lists and
  // clears outgoing_ reentrantly. Call sites revalidate afterwards.
  auto obs = stage_observers_;
  for (auto& fn : obs) fn(pid, s);
}

// ---------------------------------------------------------------------------
// Outgoing
// ---------------------------------------------------------------------------

void MigrationManager::migrate(const PcbPtr& pcb, HostId target,
                               std::function<void(Status)> cb) {
  if (target == self_ || target == sim::kInvalidHost)
    return cb(Status(Err::kInval, "bad migration target"));
  if (pcb->space && pcb->space->shared_writable)
    return cb(Status(Err::kNotMigratable, "shared writable memory"));
  for (const auto& [t, og] : outgoing_) {
    if (og.pcb->pid == pcb->pid)
      return cb(Status(Err::kBusy, "migration already in progress"));
  }

  const std::uint64_t token = next_token_++;
  Outgoing og;
  og.pcb = pcb;
  og.target = target;
  og.cb = std::move(cb);
  og.resume_handled_by_caller =
      pcb->migrate_syscall_pending || pcb->program == nullptr;
  og.rec.pid = pcb->pid;
  og.rec.from = self_;
  og.rec.to = target;
  og.rec.strategy = strategy_;
  og.rec.exec_time = pcb->program == nullptr;
  og.rec.started = host_.cluster().sim().now();
  og.rec.frozen_at = og.rec.started;

  trace::Registry& tr = host_.cluster().sim().trace();
  tr.flight_note("mig.start", strategy_name(strategy_), self_,
                 static_cast<std::int64_t>(pcb->pid), target);
  if (tr.tracing()) {
    // One trace per migration, rooted at a span emitted retroactively on
    // completion. Making the context ambient for the kInit call below puts
    // the whole continuation-passing pipeline — and, via the wire-carried
    // contexts, the target/home/file-server side — into this trace.
    og.root_span = tr.reserve_span();
    og.ctx = trace::Context{tr.new_trace().trace_id, og.root_span};
  }
  const trace::Context mig_ctx = og.ctx;
  outgoing_.emplace(token, std::move(og));

  auto body = std::make_shared<InitReq>();
  body->version = version_;
  body->pid = pcb->pid;
  trace::ScopedContext scope(tr, mig_ctx);
  host_.rpc().call(target, ServiceId::kMigration,
                   static_cast<int>(MigOp::kInit), body,
                   [this, token](util::Result<Reply> r) {
                     auto it = outgoing_.find(token);
                     if (it == outgoing_.end()) return;
                     if (!r.is_ok())
                       return fail(token, r.status());
                     if (!r->status.is_ok())
                       return fail(token, r->status);
                     auto rep = rpc::body_cast<InitRep>(r->body);
                     SPRITE_CHECK(rep != nullptr);
                     if (!rep->accepted)
                       return fail(token,
                                   Status(Err::kVersionSkew,
                                          "kernel migration versions differ"));
                     it->second.rec.init_done_at =
                         host_.cluster().sim().now();
                     notify_stage(it->second.rec.pid, MigStage::kInit);
                     after_init(token);  // revalidates the token
                   });
}

namespace {

// A migration in progress can race the process's own exit (it keeps running
// until frozen). Every pipeline stage revalidates before touching state.
bool still_alive(const PcbPtr& pcb) {
  return pcb->state != proc::ProcState::kZombie &&
         pcb->state != proc::ProcState::kDead;
}

}  // namespace

void MigrationManager::after_init(std::uint64_t token) {
  auto it = outgoing_.find(token);
  if (it == outgoing_.end()) return;
  Outgoing& og = it->second;
  if (!still_alive(og.pcb) || !host_.procs().find(og.pcb->pid))
    return fail(token, Status(Err::kSrch, "process exited before transfer"));

  // Pre-copy runs rounds while the process continues executing; everything
  // else freezes first.
  if (strategy_ == VmStrategy::kPreCopy && og.pcb->space &&
      og.pcb->program != nullptr) {
    precopy_round(token, 0, INT64_MAX);
    return;
  }
  host_.procs().freeze(og.pcb, [this, token] {
    auto it = outgoing_.find(token);
    if (it == outgoing_.end()) return;
    it->second.rec.frozen_at = host_.cluster().sim().now();
    notify_stage(it->second.rec.pid, MigStage::kFreeze);
    do_vm_transfer(token);  // revalidates the token
  });
}

void MigrationManager::precopy_round(std::uint64_t token, int round,
                                     std::int64_t prev_dirty) {
  auto it = outgoing_.find(token);
  if (it == outgoing_.end()) return;
  Outgoing& og = it->second;
  // The process keeps executing during the rounds; it may exit under us.
  if (!still_alive(og.pcb) || !og.pcb->space ||
      !host_.procs().find(og.pcb->pid))
    return fail(token, Status(Err::kSrch, "process exited during pre-copy"));
  vm::SpacePtr space = og.pcb->space;

  const std::int64_t pages =
      round == 0 ? space->resident_pages() : space->dirty_pages();

  // Converged (or stopped converging): freeze and send the final dirty set.
  const bool stop = round > 0 && (pages <= 32 || round >= 4 ||
                                  pages >= prev_dirty);
  if (stop) {
    host_.procs().freeze(og.pcb, [this, token] {
      auto it = outgoing_.find(token);
      if (it == outgoing_.end()) return;
      Outgoing& og = it->second;
      if (!still_alive(og.pcb) || !og.pcb->space)
        return fail(token,
                    Status(Err::kSrch, "process exited during pre-copy"));
      og.rec.frozen_at = host_.cluster().sim().now();
      notify_stage(og.rec.pid, MigStage::kFreeze);
      it = outgoing_.find(token);  // an observer may have crashed hosts
      if (it == outgoing_.end()) return;
      vm::SpacePtr space = it->second.pcb->space;
      std::int64_t final_pages = space->dirty_pages();
      for (auto seg : vm::kAllSegments) {
        auto& st = space->segment(seg);
        st.dirty.assign(st.dirty.size(), false);
      }
      it->second.rec.pages_moved += final_pages;
      send_pages(token, final_pages, [this, token] {
        do_vm_transfer(token);
      });
    });
    return;
  }

  // Copy this round's pages while the process keeps running; it will
  // re-dirty some of them and the next round picks those up.
  for (auto seg : vm::kAllSegments) {
    auto& st = space->segment(seg);
    st.dirty.assign(st.dirty.size(), false);
  }
  og.rec.pages_moved += pages;
  ++og.rec.precopy_rounds;
  send_pages(token, pages, [this, token, round, pages] {
    precopy_round(token, round + 1, pages == 0 ? 1 : pages);
  });
}

void MigrationManager::send_pages(std::uint64_t token, std::int64_t pages,
                                  std::function<void()> done) {
  if (pages <= 0) {
    host_.cluster().sim().after(Time::zero(), std::move(done));
    return;
  }
  auto it = outgoing_.find(token);
  if (it == outgoing_.end()) return;
  const std::int64_t chunk = std::min<std::int64_t>(pages, 16);  // 64 KB
  auto body = std::make_shared<PageDataReq>();
  body->pid = it->second.pcb->pid;
  body->bytes = chunk * host_.cluster().costs().page_size;
  host_.rpc().call(
      it->second.target, ServiceId::kMigration,
      static_cast<int>(MigOp::kPageData), body,
      [this, token, pages, chunk, done = std::move(done)](
          util::Result<Reply> r) mutable {
        auto it = outgoing_.find(token);
        if (it == outgoing_.end()) return;
        if (!r.is_ok() || !r->status.is_ok())
          return fail(token, r.is_ok() ? r->status : r.status());
        send_pages(token, pages - chunk, std::move(done));
      });
}

void MigrationManager::do_vm_transfer(std::uint64_t token) {
  auto it = outgoing_.find(token);
  if (it == outgoing_.end()) return;
  Outgoing& og = it->second;
  PcbPtr pcb = og.pcb;

  auto body = std::make_shared<TransferReq>();
  body->pcb_bytes = host_.cluster().costs().mig_pcb_bytes;

  auto proceed_to_streams = [this, token, body] {
    auto it = outgoing_.find(token);
    if (it == outgoing_.end()) return;
    it->second.rec.vm_done_at = host_.cluster().sim().now();
    notify_stage(it->second.rec.pid, MigStage::kVmTransfer);
    it = outgoing_.find(token);  // an observer may have crashed hosts
    if (it == outgoing_.end()) return;
    PcbPtr pcb = it->second.pcb;
    // Remote-UNIX comparator: park the descriptor table at home instead of
    // exporting the streams; the process's file calls will be forwarded.
    if (file_call_mode_ == FileCallMode::kForwardHome) {
      if (pcb->home == self_ && !pcb->forward_file_calls &&
          !pcb->fds.empty()) {
        host_.procs().park_streams_at_home(pcb);
        pcb->forward_file_calls = true;
      }
      if (pcb->home != self_) pcb->forward_file_calls = true;
    }
    std::vector<std::pair<int, fs::StreamPtr>> fds(pcb->fds.begin(),
                                                   pcb->fds.end());
    transfer_streams(token, std::move(fds), 0, body.get(),
                     [this, token, body] { send_transfer(token, body); });
  };

  if (!pcb->space) {
    // Exec-time migration: nothing to move.
    body->has_space = false;
    proceed_to_streams();
    return;
  }

  vm::SpacePtr space = pcb->space;
  switch (strategy_) {
    case VmStrategy::kSpriteFlush: {
      og.rec.pages_flushed = space->dirty_pages();
      host_.vm().flush_dirty(space, [this, token, body, space,
                                     proceed_to_streams](Status s) {
        if (!s.is_ok()) return fail(token, s);
        auto it = outgoing_.find(token);
        if (it == outgoing_.end()) return;
        // Nothing is shipped: the target demand-pages from the server.
        host_.vm().invalidate(space);
        body->has_space = true;
        body->space = host_.vm().describe(space);
        host_.vm().release_space(space, [proceed_to_streams](Status) {
          proceed_to_streams();
        });
      });
      return;
    }
    case VmStrategy::kWholeCopy: {
      const std::int64_t pages = space->resident_pages();
      og.rec.pages_moved = pages;
      send_pages(token, pages, [this, token, body, space,
                                proceed_to_streams] {
        auto it = outgoing_.find(token);
        if (it == outgoing_.end()) return;
        // Pages crossed the wire; the target's copy is resident and clean.
        for (auto seg : vm::kAllSegments) {
          auto& st = space->segment(seg);
          st.dirty.assign(st.dirty.size(), false);
        }
        body->has_space = true;
        body->space = host_.vm().describe(space);
        host_.vm().release_space(space, [proceed_to_streams](Status) {
          proceed_to_streams();
        });
      });
      return;
    }
    case VmStrategy::kPreCopy: {
      // Rounds already ran (after_init); dirty flags were cleared as the
      // final set was sent. The target's image is resident and clean.
      body->has_space = true;
      body->space = host_.vm().describe(space);
      host_.vm().release_space(space, [proceed_to_streams](Status) {
        proceed_to_streams();
      });
      return;
    }
    case VmStrategy::kCopyOnRef: {
      // Ship only page tables; previously-resident pages become remote on
      // the target and we keep the image to serve pulls (residual
      // dependency).
      body->has_space = true;
      body->cor_source_resident = true;
      vm::SpaceDescriptor desc = host_.vm().describe(space);
      for (auto& seg : desc.segments) {
        seg.in_remote = seg.resident;
        seg.resident.assign(seg.resident.size(), false);
        seg.dirty.assign(seg.dirty.size(), false);
      }
      body->space = std::move(desc);
      residual_[space->asid()] = space;
      residual_owner_[space->asid()] = it->second.target;
      proceed_to_streams();
      return;
    }
  }
  SPRITE_UNREACHABLE("unknown strategy");
}

void MigrationManager::transfer_streams(
    std::uint64_t token, std::vector<std::pair<int, fs::StreamPtr>> fds,
    std::size_t i, TransferReq* out, std::function<void()> done) {
  if (i >= fds.size()) {
    auto it = outgoing_.find(token);
    if (it != outgoing_.end()) {
      it->second.rec.streams_moved = static_cast<std::int64_t>(fds.size());
      it->second.rec.streams_done_at = host_.cluster().sim().now();
      notify_stage(it->second.rec.pid, MigStage::kStreams);
    }
    done();  // send_transfer revalidates the token
    return;
  }
  auto it = outgoing_.find(token);
  if (it == outgoing_.end()) return;
  const auto [fd, stream] = fds[i];
  const bool shared = stream->local_refs > 1;
  const HostId target = it->second.target;
  // Deencapsulating and reencapsulating a stream costs kernel CPU on top of
  // the I/O-server RPC (the per-file component of experiment E1).
  host_.cpu().submit(
      sim::JobClass::kKernel, host_.cluster().costs().mig_stream_cpu,
      [this, token, fds = std::move(fds), i, fd = fd, stream, shared, target,
       out, done = std::move(done)]() mutable {
        if (outgoing_.find(token) == outgoing_.end()) return;
        host_.fs().export_stream(
            stream, target, shared,
            [this, token, fds = std::move(fds), i, fd = fd, stream, shared,
             out,
             done = std::move(done)](util::Result<fs::ExportedStream> r) mutable {
              if (!r.is_ok()) return fail(token, r.status());
              if (shared) --stream->local_refs;
              out->streams.emplace_back(fd, std::move(*r));
              transfer_streams(token, std::move(fds), i + 1, out,
                               std::move(done));
            });
      });
}

void MigrationManager::send_transfer(std::uint64_t token,
                                     std::shared_ptr<TransferReq> body) {
  auto it = outgoing_.find(token);
  if (it == outgoing_.end()) return;
  Outgoing& og = it->second;
  PcbPtr pcb = og.pcb;

  body->pid = pcb->pid;
  body->ppid = pcb->ppid;
  body->home = pcb->home;
  body->exe_path = pcb->exe_path;
  body->args = pcb->args;
  body->view = pcb->view;
  body->spawned_at = pcb->spawned_at;
  body->remaining_compute = pcb->remaining_compute;
  body->pause_remaining = pcb->pause_remaining;
  body->blocked_in_wait = pcb->blocked_in_wait;
  body->kill_pending = pcb->kill_pending;
  body->kill_sig = pcb->kill_sig;
  body->next_fd = pcb->next_fd;
  body->incarnation = pcb->incarnation;
  body->forward_file_calls = pcb->forward_file_calls;
  if (pcb->program != nullptr) {
    auto box = std::make_shared<ProgramBox>();
    box->program = std::move(pcb->program);
    body->box = std::move(box);
  }
  og.body = body;

  // Encapsulation consumes source CPU, then the state crosses the wire.
  host_.cpu().submit(
      JobClass::kKernel, host_.cluster().costs().mig_encapsulate_cpu,
      [this, token, body] {
        auto it = outgoing_.find(token);
        if (it == outgoing_.end()) return;
        host_.rpc().call(
            it->second.target, ServiceId::kMigration,
            static_cast<int>(MigOp::kTransfer), body,
            [this, token, body](util::Result<Reply> r) {
              auto it = outgoing_.find(token);
              if (it == outgoing_.end()) return;
              if (!r.is_ok() || !r->status.is_ok()) {
                // Reclaim the program image before thawing locally.
                if (body->box && body->box->program)
                  it->second.pcb->program = std::move(body->box->program);
                const Status why = r.is_ok() ? r->status : r.status();
                if (why.err() == Err::kStale) {
                  // The home granted the pid to a newer incarnation (a
                  // checkpoint restart won the race) while this copy was
                  // frozen in flight. Thawing it would fork the process:
                  // reap it instead — exactly one incarnation survives.
                  Outgoing og = std::move(it->second);
                  outgoing_.erase(it);
                  c_failed_->inc();
                  host_.cluster().sim().trace().flight_note(
                      "mig.out", "stale_reaped", self_,
                      static_cast<std::int64_t>(og.pcb->pid));
                  host_.procs().reap_stale_incarnation(og.pcb->pid);
                  og.cb(why);
                  return;
                }
                return fail(token, why);
              }
              Outgoing og = std::move(it->second);
              outgoing_.erase(it);
              og.rec.resumed_at = host_.cluster().sim().now();
              host_.procs().remove(og.pcb->pid);
              c_out_->inc();
              records_.push_back(og.rec);
              note_success(og);
              notify_stage(og.rec.pid, MigStage::kResume);
              // An observer may have crashed this very host; the completion
              // callback belonged to the now-dead kernel.
              if (!host_.up()) return;
              og.cb(Status::ok());
            });
      });
}

void MigrationManager::fail(std::uint64_t token, Status why) {
  auto it = outgoing_.find(token);
  if (it == outgoing_.end()) return;
  Outgoing og = std::move(it->second);
  outgoing_.erase(it);
  c_failed_->inc();
  host_.cluster().sim().trace().flight_note(
      "mig.fail", "aborted", self_, static_cast<std::int64_t>(og.pcb->pid),
      og.target);
  if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing()) {
    tr.instant("mig", "migrate failed", self_,
               static_cast<std::int64_t>(og.pcb->pid),
               {{"to", std::to_string(og.target)},
                {"why", why.to_string()}});
    // Close out the reserved root span so the trace of a failed migration
    // still has its operation root (live child spans reference it).
    if (og.root_span != 0)
      tr.span_at("mig", "migrate (failed)", self_,
                 static_cast<std::int64_t>(og.pcb->pid), og.rec.started,
                 host_.cluster().sim().now(), {{"why", why.to_string()}},
                 trace::Context{og.ctx.trace_id, 0}, og.root_span);
  }

  // Tell the target to drop any pending slot. If the target is dead the
  // RPC layer fails this quickly (a down peer gets one doubtful attempt);
  // the result is ignored either way.
  {
    auto abort = std::make_shared<AbortReq>();
    abort->pid = og.pcb->pid;
    host_.rpc().call(og.target, ServiceId::kMigration,
                     static_cast<int>(MigOp::kAbort), abort,
                     [](util::Result<Reply>) {});
  }

  PcbPtr pcb = og.pcb;
  // The program image may have moved into the in-flight transfer body (a
  // peer crash can abort us between encapsulation and the RPC reply); a
  // thawed process must never run without it.
  if (pcb->program == nullptr && og.body && og.body->box &&
      og.body->box->program) {
    pcb->program = std::move(og.body->box->program);
  }
  if (pcb->program == nullptr && og.body && og.body->box) {
    // The image went into the transfer body and never came back: the target
    // consumed it and the failure we saw was a timeout or a down verdict,
    // not a definitive rejection (a rejecting target restores the image).
    // Exactly one incarnation may run, and it is the target's now — drop
    // the frozen local copy. If the target really died with it, the home
    // machine's monitor reaps the process through the home record.
    if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
      tr.instant("mig", "image departed", self_,
                 static_cast<std::int64_t>(pcb->pid),
                 {{"to", std::to_string(og.target)}});
    if (pcb->space) {
      residual_.erase(pcb->space->asid());
      residual_owner_.erase(pcb->space->asid());
    }
    host_.procs().remove(pcb->pid);
    og.cb(why);
    return;
  }
  const bool was_frozen = pcb->state == proc::ProcState::kFrozen;
  auto finish = [this, pcb, was_frozen,
                 caller_resumes = og.resume_handled_by_caller,
                 cb = std::move(og.cb), why] {
    if (was_frozen) {
      if (caller_resumes) {
        // The kernel-call layer completes the interrupted call.
        pcb->state = proc::ProcState::kRunnable;
      } else {
        host_.procs().install_and_resume(pcb);
      }
    }
    // If it was never frozen it simply kept running.
    cb(why);
  };

  // Restore the address space if the strategy already detached it.
  if (pcb->space) {
    residual_.erase(pcb->space->asid());
    residual_owner_.erase(pcb->space->asid());
    if (!pcb->space->segment(vm::Segment::kCode).backing &&
        pcb->space->segment(vm::Segment::kCode).pages > 0) {
      // Streams were released; re-adopt our own descriptor.
      vm::SpaceDescriptor desc = host_.vm().describe(pcb->space);
      host_.vm().adopt_space(desc,
                             [pcb, finish](util::Result<vm::SpacePtr> r) {
                               if (r.is_ok()) pcb->space = *r;
                               finish();
                             });
      return;
    }
  }
  finish();
}

void MigrationManager::evict_all_foreign(std::function<void(int)> cb) {
  auto foreign = host_.procs().foreign_processes();
  if (foreign.empty()) {
    host_.cluster().sim().after(Time::zero(),
                                [cb = std::move(cb)] { cb(0); });
    return;
  }
  struct Progress {
    int pending = 0;
    int evicted = 0;
  };
  auto prog = std::make_shared<Progress>();
  prog->pending = static_cast<int>(foreign.size());
  auto shared_cb = std::make_shared<std::function<void(int)>>(std::move(cb));
  for (const auto& pcb : foreign) {
    auto done = [this, prog, shared_cb](Status s) {
      // On failure the process was thawed and resumed in place (fail());
      // the owner keeps suffering but the process survives.
      if (s.is_ok()) {
        ++prog->evicted;
        c_evictions_->inc();
      }
      if (--prog->pending == 0) (*shared_cb)(prog->evicted);
    };
    // Checkpoint fast path (opt-in): commit an incremental image at
    // local-write cost and hand the process to its home by reference
    // instead of shipping the whole address space. Any failure falls back
    // to an ordinary migration home.
    if (host_.ckpt().evict_via_checkpoint()) {
      host_.ckpt().checkpoint_and_depart(
          pcb, [this, pcb, done](Status s) {
            if (s.is_ok()) return done(s);
            migrate(pcb, pcb->home, done);
          });
      continue;
    }
    migrate(pcb, pcb->home, done);
  }
}

// ---------------------------------------------------------------------------
// Crash support
// ---------------------------------------------------------------------------

void MigrationManager::crash_reset() {
  outgoing_.clear();  // no callbacks: their closures died with the kernel
  pending_in_.clear();
  residual_.clear();
  residual_owner_.clear();
  cor_sources_.clear();
}

void MigrationManager::note_process_reaped(Pid pid) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [token, og] : outgoing_)
    if (og.pcb->pid == pid) doomed.push_back(token);
  for (const auto token : doomed) {
    auto it = outgoing_.find(token);
    if (it == outgoing_.end()) continue;
    Outgoing og = std::move(it->second);
    outgoing_.erase(it);
    c_failed_->inc();
    if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
      tr.instant("mig", "migrate aborted: process reaped", self_,
                 static_cast<std::int64_t>(pid),
                 {{"to", std::to_string(og.target)}});
    {
      auto abort = std::make_shared<AbortReq>();
      abort->pid = pid;
      host_.rpc().call(og.target, ServiceId::kMigration,
                       static_cast<int>(MigOp::kAbort), abort,
                       [](util::Result<Reply>) {});
    }
    og.cb(Status(Err::kNoEnt, "process died during migration"));
  }
}

void MigrationManager::peer_crashed(HostId peer) {
  // Outgoing migrations targeting the dead host: roll back and thaw now
  // instead of waiting out the RPC retry limit.
  std::vector<std::uint64_t> doomed;
  for (const auto& [token, og] : outgoing_)
    if (og.target == peer) doomed.push_back(token);
  for (const auto token : doomed)
    fail(token, Status(Err::kTimedOut, "migration target crashed"));

  // Half-accepted incoming transfers from the dead source never complete.
  for (auto it = pending_in_.begin(); it != pending_in_.end();)
    it = it->second == peer ? pending_in_.erase(it) : std::next(it);

  // Residual copy-on-reference images serving the dead host are
  // unreachable; free them.
  for (auto it = residual_owner_.begin(); it != residual_owner_.end();) {
    if (it->second != peer) {
      ++it;
      continue;
    }
    residual_.erase(it->first);
    it = residual_owner_.erase(it);
  }

  // Processes here that pull pages from the dead source can never fault
  // another page in: kill them (the residual-dependency hazard that made
  // Sprite prefer flushing over copy-on-reference).
  std::vector<Pid> stranded;
  for (const auto& [pid, src] : cor_sources_)
    if (src == peer) stranded.push_back(pid);
  for (const Pid pid : stranded) {
    cor_sources_.erase(pid);
    if (!host_.procs().find(pid)) continue;
    c_cor_kills_->inc();
    if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
      tr.instant("mig", "killed: cor source crashed", self_,
                 static_cast<std::int64_t>(pid));
    host_.procs().deliver_signal(pid, 9);
  }
}

void MigrationManager::collect_peer_interest(
    std::vector<sim::HostId>& out) const {
  for (const auto& [token, og] : outgoing_) out.push_back(og.target);
  for (const auto& [pid, src] : pending_in_) out.push_back(src);
  for (const auto& [asid, owner] : residual_owner_) out.push_back(owner);
  for (const auto& [pid, src] : cor_sources_) out.push_back(src);
}

void MigrationManager::fetch_remote_chunks(HostId source, std::int64_t asid,
                                           vm::Segment seg,
                                           std::int64_t first,
                                           std::int64_t count,
                                           vm::VmManager::StatusCb cb) {
  if (count <= 0) return cb(Status::ok());
  const std::int64_t chunk = std::min<std::int64_t>(count, 16);
  auto body = std::make_shared<FetchPagesReq>();
  body->asid = asid;
  body->seg = seg;
  body->first = first;
  body->count = chunk;
  host_.rpc().call(
      source, ServiceId::kMigration, static_cast<int>(MigOp::kFetchPages),
      body,
      [this, source, asid, seg, first, count, chunk,
       cb = std::move(cb)](util::Result<Reply> r) mutable {
        if (!r.is_ok()) return cb(r.status());
        if (!r->status.is_ok()) return cb(r->status);
        fetch_remote_chunks(source, asid, seg, first + chunk, count - chunk,
                            std::move(cb));
      });
}

// ---------------------------------------------------------------------------
// Incoming
// ---------------------------------------------------------------------------

void MigrationManager::handle_rpc(HostId src, const Request& req,
                                  std::function<void(Reply)> respond) {
  switch (static_cast<MigOp>(req.op)) {
    case MigOp::kInit: {
      auto body = rpc::body_cast<InitReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      auto rep = std::make_shared<InitRep>();
      rep->version = version_;
      rep->accepted = body->version == version_;
      if (rep->accepted) pending_in_[body->pid] = src;
      respond(Reply{Status::ok(), rep});
      return;
    }
    case MigOp::kPageData: {
      // The payload's wire time is the cost; nothing to store.
      respond(Reply{Status::ok(), nullptr});
      return;
    }
    case MigOp::kTransfer: {
      auto body = rpc::body_cast<TransferReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      handle_transfer(src, *body, std::move(respond));
      return;
    }
    case MigOp::kFetchPages: {
      auto body = rpc::body_cast<FetchPagesReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      auto it = residual_.find(body->asid);
      if (it == residual_.end()) {
        respond(Reply{Status(Err::kNoEnt, "no residual image"), nullptr});
        return;
      }
      c_cor_pages_->inc(body->count);
      if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
        tr.instant("mig", "cor pages served", self_, -1,
                   {{"count", std::to_string(body->count)},
                    {"to", std::to_string(src)}});
      auto rep = std::make_shared<FetchPagesRep>();
      rep->bytes = body->count * host_.cluster().costs().page_size;
      respond(Reply{Status::ok(), rep});
      return;
    }
    case MigOp::kAbort: {
      auto body = rpc::body_cast<AbortReq>(req.body);
      SPRITE_CHECK(body != nullptr);
      pending_in_.erase(body->pid);
      respond(Reply{Status::ok(), nullptr});
      return;
    }
  }
  respond(Reply{Status(Err::kNotSupported, "bad migration op"), nullptr});
}

void MigrationManager::handle_transfer(HostId src, const TransferReq& req,
                                       std::function<void(Reply)> respond) {
  auto pit = pending_in_.find(req.pid);
  if (pit == pending_in_.end() || pit->second != src) {
    respond(Reply{Status(Err::kInval, "transfer without init"), nullptr});
    return;
  }
  pending_in_.erase(pit);

  auto pcb = std::make_shared<Pcb>();
  pcb->pid = req.pid;
  pcb->ppid = req.ppid;
  pcb->home = req.home;
  pcb->current = self_;
  pcb->exe_path = req.exe_path;
  pcb->args = req.args;
  pcb->view = req.view;
  pcb->spawned_at = req.spawned_at;
  pcb->remaining_compute = req.remaining_compute;
  pcb->pause_remaining = req.pause_remaining;
  pcb->blocked_in_wait = req.blocked_in_wait;
  pcb->kill_pending = req.kill_pending;
  pcb->kill_sig = req.kill_sig;
  pcb->next_fd = req.next_fd;
  pcb->incarnation = req.incarnation;
  pcb->forward_file_calls = req.forward_file_calls;
  if (req.box) pcb->program = std::move(req.box->program);

  for (const auto& [fd, exported] : req.streams)
    pcb->fds[fd] = host_.fs().import_stream(exported);

  const HostId source = src;
  auto respond_sp =
      std::make_shared<std::function<void(Reply)>>(std::move(respond));

  // Installation failed after streams were already imported: release them
  // (balancing the server-side attribution this host just gained) and reply
  // with the error, so the source rolls back and thaws promptly instead of
  // waiting out the RPC timeout. The half-built PCB dies here.
  auto reject = [this, pcb, respond_sp, box = req.box](Status why) {
    // The transfer body is shared with the source (the simulated wire does
    // not serialize); put the program image back so the source's rollback
    // can thaw the process. A definitive rejection means this host never
    // ran it.
    if (box && pcb->program) box->program = std::move(pcb->program);
    std::vector<fs::StreamPtr> to_close;
    for (auto& [fd, s] : pcb->fds)
      if (--s->local_refs == 0) to_close.push_back(s);
    pcb->fds.clear();
    for (auto& s : to_close) host_.fs().close(s, [](Status) {});
    if (trace::Registry& tr = host_.cluster().sim().trace(); tr.tracing())
      tr.instant("mig", "transfer rejected", self_,
                 static_cast<std::int64_t>(pcb->pid),
                 {{"why", why.to_string()}});
    (*respond_sp)(Reply{why, nullptr});
  };

  auto finish_install = [this, pcb, respond_sp, box = req.box]() mutable {
    // Update the home machine before the process can run (wait-notifies and
    // signals must find the new location).
    auto upd = std::make_shared<proc::UpdateLocationReq>();
    upd->pid = pcb->pid;
    upd->host = self_;
    upd->incarnation = pcb->incarnation;
    host_.rpc().call(
        pcb->home, ServiceId::kProc,
        static_cast<int>(proc::ProcOp::kUpdateLocation), upd,
        [this, pcb, respond_sp, box](util::Result<Reply> ur) mutable {
          // A kStale refusal means a newer incarnation claimed the pid (a
          // checkpoint restart raced this migration and won): this copy
          // must not run. Dismantle it and report the refusal — the source
          // then reaps its frozen copy too. Transport failures fall
          // through: location repair on first contact handles those, as
          // before.
          if (ur.is_ok() && ur->status.err() == Err::kStale) {
            if (box && pcb->program) box->program = std::move(pcb->program);
            cor_sources_.erase(pcb->pid);
            std::vector<fs::StreamPtr> to_close;
            for (auto& [fd, s] : pcb->fds)
              if (--s->local_refs == 0) to_close.push_back(s);
            pcb->fds.clear();
            for (auto& s : to_close) host_.fs().close(s, [](Status) {});
            if (pcb->space) {
              host_.vm().destroy_space(pcb->space, [](Status) {});
              pcb->space = nullptr;
            }
            host_.cluster().sim().trace().flight_note(
                "mig.in", "stale_refused", self_,
                static_cast<std::int64_t>(pcb->pid));
            if (trace::Registry& tr = host_.cluster().sim().trace();
                tr.tracing())
              tr.instant("mig", "transfer refused: stale incarnation", self_,
                         static_cast<std::int64_t>(pcb->pid));
            (*respond_sp)(Reply{ur->status, nullptr});
            return;
          }
          c_in_->inc();
          host_.cluster().sim().trace().flight_note(
              "mig.in", "resumed", self_,
              static_cast<std::int64_t>(pcb->pid), pcb->home);
          if (trace::Registry& tr = host_.cluster().sim().trace();
              tr.tracing())
            tr.instant("mig", "migrated in", self_,
                       static_cast<std::int64_t>(pcb->pid),
                       {{"home", std::to_string(pcb->home)}});
          host_.procs().install_and_resume(pcb);
          (*respond_sp)(Reply{Status::ok(), nullptr});
        });
  };

  // De-encapsulation consumes target CPU.
  host_.cpu().submit(
      JobClass::kKernel, host_.cluster().costs().mig_deencapsulate_cpu,
      [this, pcb, req, source, reject,
       finish_install = std::move(finish_install)]() mutable {
        if (req.has_space) {
          host_.vm().adopt_space(
              req.space,
              [this, pcb, req, source, reject,
               finish_install = std::move(finish_install)](
                  util::Result<vm::SpacePtr> r) mutable {
                if (!r.is_ok()) return reject(r.status());
                pcb->space = *r;
                if (req.cor_source_resident) {
                  // Faults on previously-resident pages pull from the
                  // source, at most 16 pages (64 KB) per RPC — larger
                  // replies would monopolize the wire and outlive the RPC
                  // retransmission timeout.
                  const std::int64_t asid = (*r)->asid();
                  host_.vm().set_remote_pager(
                      *r, [this, source, asid](vm::Segment seg,
                                               std::int64_t first,
                                               std::int64_t count,
                                               vm::VmManager::StatusCb cb) {
                        fetch_remote_chunks(source, asid, seg, first, count,
                                            std::move(cb));
                      });
                  cor_sources_[pcb->pid] = source;
                }
                finish_install();
              });
          return;
        }

        // Exec-time migration: rebuild the image from the executable.
        const proc::ProgramImage* image =
            host_.cluster().find_program(pcb->exe_path);
        if (image == nullptr)
          return reject(Status(Err::kNoEnt, pcb->exe_path));
        host_.cpu().submit(
            JobClass::kKernel, host_.cluster().costs().exec_cpu,
            [this, pcb, image, reject,
             finish_install = std::move(finish_install)]() mutable {
              host_.vm().create_space(
                  pcb->exe_path, image->code_pages, image->heap_pages,
                  image->stack_pages,
                  [this, pcb, image, reject,
                   finish_install = std::move(finish_install)](
                      util::Result<vm::SpacePtr> r) mutable {
                    if (!r.is_ok()) return reject(r.status());
                    pcb->space = *r;
                    if (!pcb->program) pcb->program = image->factory(pcb->args);
                    pcb->view.clear_result();
                    finish_install();
                  });
            });
      });
}

}  // namespace sprite::mig
