// MigrationManager: the thesis's core contribution — transparent process
// migration.
//
// A migration moves a process between hosts while preserving its pid, its
// open streams (re-attributed at the I/O servers, with shadow streams for
// shared offsets), its virtual memory (by one of four transfer strategies),
// and its process-family relationships (the home machine is updated and
// keeps answering for the process).
//
// Strategies (thesis §4.2.1, experiment E2):
//   kSpriteFlush — flush dirty pages to the shared file server; the target
//                  demand-pages from backing store. Sprite's choice: small
//                  freeze time, no source residual dependency, exploits the
//                  existing network FS.
//   kWholeCopy   — Charlotte/LOCUS: send the entire resident image while the
//                  process is frozen. Long freeze, no residuals.
//   kPreCopy     — V System: copy pages while the process keeps running,
//                  re-sending what it re-dirties; freeze only for the final
//                  dirty set. Small freeze, but total work can exceed one
//                  image transfer.
//   kCopyOnRef   — Accent: ship only the page tables; the target pulls pages
//                  from the source on first reference, leaving a residual
//                  dependency for the process's lifetime.
//
// Exec-time migration (pmake's workhorse) transfers no memory at all: the
// process image is rebuilt from the executable on the target.
//
// Migration version numbers guard against kernels whose encapsulation
// formats drifted apart (§4.x "migration fragility").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "migration/wire.h"
#include "proc/table.h"
#include "rpc/rpc.h"
#include "util/status.h"

namespace sprite::kern {
class Host;
}

namespace sprite::mig {

enum class VmStrategy : int {
  kSpriteFlush = 0,
  kWholeCopy,
  kPreCopy,
  kCopyOnRef,
};
const char* strategy_name(VmStrategy s);

// How a migrated process's file kernel calls are handled (thesis §4.3.1):
//   kTransferStreams — Sprite: streams move with the process and file calls
//                      run at the current host (the default).
//   kForwardHome     — Remote-UNIX-style comparator: streams stay on the
//                      home machine and every file call is shipped back.
enum class FileCallMode : int {
  kTransferStreams = 0,
  kForwardHome,
};

// Per-migration measurements, for tests and the benchmark harness.
struct MigrationRecord {
  proc::Pid pid = proc::kInvalidPid;
  sim::HostId from = sim::kInvalidHost;
  sim::HostId to = sim::kInvalidHost;
  VmStrategy strategy = VmStrategy::kSpriteFlush;
  bool exec_time = false;
  sim::Time started;
  sim::Time init_done_at;    // target accepted the handshake
  sim::Time frozen_at;       // when the process stopped executing
  sim::Time vm_done_at;      // VM strategy finished (flush/copy/tables)
  sim::Time streams_done_at; // open streams re-attributed
  sim::Time resumed_at;      // when it was runnable on the target
  std::int64_t pages_moved = 0;     // via network (whole/pre-copy)
  std::int64_t pages_flushed = 0;   // via the file server (Sprite flush)
  std::int64_t precopy_rounds = 0;
  std::int64_t streams_moved = 0;

  sim::Time total_time() const { return resumed_at - started; }
  sim::Time freeze_time() const { return resumed_at - frozen_at; }
};

// The points in the outgoing migration protocol where a crash can strand
// state; fault-injection tests hook add_stage_observer to crash hosts at
// each of them and assert both ends converge.
enum class MigStage : int {
  kInit,        // target accepted the version handshake
  kFreeze,      // process stopped executing on the source
  kVmTransfer,  // VM strategy finished (flush/copy/tables shipped)
  kStreams,     // open streams re-attributed at their I/O servers
  kResume,      // process installed and runnable on the target
};
const char* mig_stage_name(MigStage s);

class MigrationManager : public proc::MigratorIface {
 public:
  explicit MigrationManager(kern::Host& host);

  void register_services();

  // The encapsulation-format version this kernel speaks. Kernels refuse to
  // exchange processes across versions.
  int version() const { return version_; }
  void set_version(int v) { version_ = v; }

  VmStrategy strategy() const { return strategy_; }
  void set_strategy(VmStrategy s) { strategy_ = s; }

  FileCallMode file_call_mode() const { return file_call_mode_; }
  void set_file_call_mode(FileCallMode m) { file_call_mode_ = m; }

  // proc::MigratorIface. Moves a process currently on this host. The
  // callback reports failure (process still here, thawed) or success (the
  // process now runs on `target`).
  void migrate(const proc::PcbPtr& pcb, sim::HostId target,
               std::function<void(util::Status)> cb) override;

  // proc::MigratorIface: the process died underneath an outgoing migration
  // (home-machine crash). Aborts the transfer — tells the target to drop
  // its slot — without thawing or restoring the destroyed PCB.
  void note_process_reaped(proc::Pid pid) override;

  // Evicts every foreign process back to its home machine (the owner
  // returned). cb receives the number evicted once all transfers finish.
  void evict_all_foreign(std::function<void(int)> cb);

  // ---- Stage observation (fault-injection hooks) ----
  // Fired on the source host as each outgoing migration passes a protocol
  // stage. Observers may crash hosts; every pipeline continuation
  // revalidates its token afterwards, so a crash at any stage is safe.
  using StageObserver = std::function<void(proc::Pid, MigStage)>;
  void add_stage_observer(StageObserver fn) {
    stage_observers_.push_back(std::move(fn));
  }

  // ---- Crash support ----
  // Migrations this host is currently a party to (outgoing + accepted-in);
  // used by the starvation diagnosis dump.
  std::size_t active_migrations() const {
    return outgoing_.size() + pending_in_.size();
  }
  // This host crashed: every migration in flight, residual
  // copy-on-reference image, and half-accepted incoming transfer is
  // dropped. No callbacks fire — their closures belonged to the dead
  // kernel.
  void crash_reset();
  // A peer crashed: outgoing migrations targeting it roll back and thaw
  // immediately (instead of waiting out the RPC retry limit), incoming
  // slots it initiated are dropped, residual images serving it are freed,
  // and local processes that depend on it for copy-on-reference pages are
  // killed (the residual-dependency cost the thesis warns about).
  void peer_crashed(sim::HostId peer);
  // Peers whose death this host must detect (host-monitor interest):
  // migration counterparts, copy-on-reference sources, residual owners.
  void collect_peer_interest(std::vector<sim::HostId>& out) const;

  // ---- Statistics (registry-backed; the struct is a refreshed view) ----
  struct Stats {
    std::int64_t out = 0;           // successful migrations away
    std::int64_t in = 0;            // successful migrations in
    std::int64_t failed = 0;
    std::int64_t evictions = 0;
    std::int64_t cor_pages_served = 0;  // residual-dependency traffic
  };
  const Stats& stats() const;
  const std::vector<MigrationRecord>& records() const { return records_; }
  const MigrationRecord& last_record() const;
  // Residual dependencies currently held for copy-on-reference sources.
  std::size_t residual_spaces() const { return residual_.size(); }

 private:
  struct Outgoing {
    proc::PcbPtr pcb;
    sim::HostId target = sim::kInvalidHost;
    std::function<void(util::Status)> cb;
    MigrationRecord rec;
    // True when the migration was initiated from inside a kernel call
    // (migrate-self or exec-time): on failure the process-table layer
    // completes the call; we only thaw the state. Otherwise (eviction,
    // direct kernel-initiated migration) a frozen process is resumed here.
    bool resume_handled_by_caller = false;
    // Retained while the kTransfer RPC is in flight: the program image moves
    // into the request body, and fail() must be able to reclaim it no matter
    // which path (RPC error, peer crash) aborts the migration.
    std::shared_ptr<TransferReq> body;
    // Causal trace of this migration: a trace id + reserved root span,
    // ambient for the whole pipeline so every RPC/VM/stream span (on any
    // host) lands in one tree. The root span itself is emitted retroactively
    // by note_success()/fail() under the reserved id.
    trace::Context ctx;
    trace::SpanId root_span = 0;
  };

  void handle_rpc(sim::HostId src, const rpc::Request& req,
                  std::function<void(rpc::Reply)> respond);
  void handle_transfer(sim::HostId src, const TransferReq& req,
                       std::function<void(rpc::Reply)> respond);

  // Outgoing pipeline.
  void after_init(std::uint64_t token);
  void do_vm_transfer(std::uint64_t token);
  void precopy_round(std::uint64_t token, int round,
                     std::int64_t prev_dirty);
  void send_pages(std::uint64_t token, std::int64_t pages,
                  std::function<void()> done);
  void transfer_streams(std::uint64_t token,
                        std::vector<std::pair<int, fs::StreamPtr>> fds,
                        std::size_t i, TransferReq* out,
                        std::function<void()> done);
  void send_transfer(std::uint64_t token,
                     std::shared_ptr<TransferReq> body);
  void fail(std::uint64_t token, util::Status why);
  // Copy-on-reference pulls, bounded to 16 pages per RPC.
  void fetch_remote_chunks(sim::HostId source, std::int64_t asid,
                           vm::Segment seg, std::int64_t first,
                           std::int64_t count, vm::VmManager::StatusCb cb);

  kern::Host& host_;
  sim::HostId self_;
  int version_ = 1;
  VmStrategy strategy_ = VmStrategy::kSpriteFlush;
  FileCallMode file_call_mode_ = FileCallMode::kTransferStreams;

  std::map<std::uint64_t, Outgoing> outgoing_;
  std::uint64_t next_token_ = 1;

  // Target side: pids with an accepted kInit pending a kTransfer.
  std::map<proc::Pid, sim::HostId> pending_in_;

  // Copy-on-reference source images, by asid, and which host each one
  // serves (so a target crash can free the now-unreachable image).
  std::map<std::int64_t, vm::SpacePtr> residual_;
  std::map<std::int64_t, sim::HostId> residual_owner_;

  // Local processes whose pages pull from a remote source (target side of
  // kCopyOnRef): pid -> source host. A source crash kills them.
  std::map<proc::Pid, sim::HostId> cor_sources_;

  // Fires the stage observers; tolerates observers that crash hosts (and
  // thereby clear outgoing_) reentrantly.
  void notify_stage(proc::Pid pid, MigStage s);
  std::vector<StageObserver> stage_observers_;

  // Emits the freeze/vm/streams/resume span breakdown and feeds the latency
  // histograms once a migration completes.
  void note_success(const Outgoing& og);

  // Registry-backed metrics (trace/trace.h) and the legacy struct view.
  trace::Counter* c_out_;
  trace::Counter* c_in_;
  trace::Counter* c_failed_;
  trace::Counter* c_evictions_;
  trace::Counter* c_cor_pages_;
  trace::Counter* c_cor_kills_;
  trace::LatencyHistogram* h_total_ms_;
  trace::LatencyHistogram* h_freeze_ms_;
  mutable Stats stats_view_;
  std::vector<MigrationRecord> records_;
};

}  // namespace sprite::mig
