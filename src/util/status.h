// Status / Result<T>: value-based error handling for simulated kernel calls.
//
// Kernel calls in Sprite (as in 4.3BSD) report failures through errno-style
// codes, not exceptions, so the simulation mirrors that: every fallible
// protocol operation returns a Status or a Result<T>.  Exceptions are reserved
// for programming errors (see util/assert.h).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.h"

namespace sprite::util {

// Error codes for kernel-call and RPC failures.  Names follow the UNIX errno
// values they correspond to where one exists.
enum class Err {
  kOk = 0,
  kNoEnt,         // no such file, process, or host
  kBadF,          // bad stream descriptor
  kAccess,        // permission / mode mismatch
  kExist,         // already exists
  kInval,         // invalid argument
  kBusy,          // resource busy (e.g. host no longer idle)
  kAgain,         // transient failure, retry later
  kTimedOut,      // RPC timed out (host down or unreachable)
  kNotMigratable, // process uses state that cannot be migrated
  kVersionSkew,   // migration version mismatch between kernels
  kNoSpace,       // out of blocks / table slots
  kSrch,          // no such process (ESRCH)
  kChild,         // no children to wait for (ECHILD)
  kIntr,          // interrupted by signal
  kStale,         // stale handle after server reboot
  kNotSupported,  // operation not implemented for this object
  kWouldBlock,    // pipe empty/full; the server will send a wakeup
  kPipe,          // EPIPE: writing a pipe with no readers
};

// Human-readable name for an error code.
const char* err_name(Err e);

// A success-or-error value.  Cheap to copy; carries an optional message for
// diagnostics only (never used for control flow).
class Status {
 public:
  Status() : err_(Err::kOk) {}
  explicit Status(Err e, std::string msg = "")
      : err_(e), msg_(std::move(msg)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return err_ == Err::kOk; }
  Err err() const { return err_; }
  const std::string& message() const { return msg_; }

  std::string to_string() const {
    std::string s = err_name(err_);
    if (!msg_.empty()) s += ": " + msg_;
    return s;
  }

 private:
  Err err_;
  std::string msg_;
};

// A value of type T or an error.  Analogous to std::expected<T, Err>
// (unavailable in this toolchain's standard library).
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Err e, std::string msg = "")        // NOLINT: implicit by design
      : v_(Status(e, std::move(msg))) {
    SPRITE_CHECK_MSG(e != Err::kOk, "Result error constructor requires error");
  }
  Result(Status s) : v_(std::move(s)) {      // NOLINT: implicit by design
    SPRITE_CHECK_MSG(!status().is_ok(),
                     "Result Status constructor requires error");
  }

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  // Precondition: is_ok().
  T& value() {
    SPRITE_CHECK_MSG(is_ok(), "Result::value on error");
    return std::get<T>(v_);
  }
  const T& value() const {
    SPRITE_CHECK_MSG(is_ok(), "Result::value on error");
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Precondition: !is_ok().
  const Status& status() const {
    SPRITE_CHECK_MSG(!is_ok(), "Result::status on success");
    return std::get<Status>(v_);
  }
  Err err() const { return is_ok() ? Err::kOk : status().err(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace sprite::util
