// Leveled logging with simulated-time prefixes.
//
// The simulator installs a time source so every log line is stamped with the
// simulated clock, which is what one wants when debugging a distributed
// protocol. Logging defaults to kWarn so tests and benches stay quiet;
// examples turn on kInfo.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace sprite::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global log level. Not thread-safe by design: the simulation is
// single-threaded and deterministic.
void set_log_level(LogLevel level);
LogLevel log_level();

// Installs a function returning the current simulated time in microseconds;
// pass nullptr to clear. Owned by the active Simulator.
void set_log_time_source(std::function<std::int64_t()> now_us);

// When a trace registry is active it installs a sink here; kTrace-level log
// statements are then delivered (pre-formatted) to the sink as well, even
// when the console log level would suppress them, so the log and trace
// timelines line up. Pass nullptr to clear.
void set_log_trace_sink(
    std::function<void(const char* tag, const char* body)> sink);
bool log_trace_sink_active();

// printf-style log statement. `tag` identifies the subsystem
// ("rpc", "fs", "mig", ...).
void logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace sprite::util

#define SPRITE_LOG(level, tag, ...)                                   \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
            static_cast<int>(::sprite::util::log_level()) ||          \
        ((level) == ::sprite::util::LogLevel::kTrace &&               \
         ::sprite::util::log_trace_sink_active()))                    \
      ::sprite::util::logf((level), (tag), __VA_ARGS__);              \
  } while (0)

#define LOG_TRACE(tag, ...) \
  SPRITE_LOG(::sprite::util::LogLevel::kTrace, tag, __VA_ARGS__)
#define LOG_DEBUG(tag, ...) \
  SPRITE_LOG(::sprite::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define LOG_INFO(tag, ...) \
  SPRITE_LOG(::sprite::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define LOG_WARN(tag, ...) \
  SPRITE_LOG(::sprite::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define LOG_ERROR(tag, ...) \
  SPRITE_LOG(::sprite::util::LogLevel::kError, tag, __VA_ARGS__)
