// Lightweight always-on assertion macros.
//
// The simulation is deterministic; an assertion failure indicates a logic bug,
// never an environmental condition, so we abort with a readable message rather
// than throwing (C++ Core Guidelines I.5/E.12: treat precondition violations
// as unrecoverable).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sprite::util {

// Invoked (once) just before a failed CHECK aborts, so a diagnostic layer
// can dump state — the trace registry installs its flight-recorder dump
// here. Plain function pointer: this must work mid-crash with no allocation.
using CheckFailureHook = void (*)();

inline CheckFailureHook& check_failure_hook() {
  static CheckFailureHook hook = nullptr;
  return hook;
}

inline void set_check_failure_hook(CheckFailureHook hook) {
  check_failure_hook() = hook;
}

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  // Disarm before invoking: the hook itself may trip a CHECK, and a second
  // failure must fall straight through to abort.
  if (CheckFailureHook hook = check_failure_hook()) {
    check_failure_hook() = nullptr;
    hook();
  }
  std::abort();
}

}  // namespace sprite::util

// Abort with a diagnostic unless `expr` holds. Always compiled in.
#define SPRITE_CHECK(expr)                                             \
  do {                                                                 \
    if (!(expr))                                                       \
      ::sprite::util::check_failed(__FILE__, __LINE__, #expr, "");     \
  } while (0)

// Like SPRITE_CHECK with an explanatory message.
#define SPRITE_CHECK_MSG(expr, msg)                                    \
  do {                                                                 \
    if (!(expr))                                                       \
      ::sprite::util::check_failed(__FILE__, __LINE__, #expr, (msg));  \
  } while (0)

// Marks an unreachable code path.
#define SPRITE_UNREACHABLE(msg) \
  ::sprite::util::check_failed(__FILE__, __LINE__, "unreachable", (msg))
