#include "util/rng.h"

#include <cmath>

namespace sprite::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SPRITE_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  SPRITE_CHECK(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::hyperexponential(double p, double m1, double m2) {
  return bernoulli(p) ? exponential(m1) : exponential(m2);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::pareto(double xm, double alpha) {
  SPRITE_CHECK(xm > 0 && alpha > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::index(std::size_t size) {
  SPRITE_CHECK(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  SPRITE_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace sprite::util
