#include "util/stats.h"

#include <cmath>
#include <cstdio>

#include "util/assert.h"

namespace sprite::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

std::string Accumulator::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "n=%lld mean=%.3f sd=%.3f min=%.3f max=%.3f",
                static_cast<long long>(n_), mean(), stddev(), min(), max());
  return buf;
}

double Distribution::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Distribution::quantile(double q) const {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(xs_.size() - 1) + 0.5);
  return xs_[rank];
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SPRITE_CHECK(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    SPRITE_CHECK(bounds_[i - 1] < bounds_[i]);
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) {
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

std::string Histogram::ascii(int width) const {
  std::int64_t maxc = 1;
  for (auto c : counts_) maxc = std::max(maxc, c);
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i == 0) {
      std::snprintf(buf, sizeof buf, "%10s<%-8.3g ", "", bounds_[0]);
    } else if (i == counts_.size() - 1) {
      std::snprintf(buf, sizeof buf, "%10s>=%-7.3g ", "", bounds_.back());
    } else {
      std::snprintf(buf, sizeof buf, "%9.3g..%-8.3g ", bounds_[i - 1],
                    bounds_[i]);
    }
    out += buf;
    const int bar = static_cast<int>(counts_[i] * width / maxc);
    out.append(static_cast<std::size_t>(bar), '#');
    std::snprintf(buf, sizeof buf, " %lld\n",
                  static_cast<long long>(counts_[i]));
    out += buf;
  }
  return out;
}

}  // namespace sprite::util
