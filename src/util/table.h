// ASCII table printing for benchmark output.
//
// Every bench binary reports the paper's rows next to measured rows; a tiny
// fixed-width table formatter keeps that output legible and diffable.
#pragma once

#include <string>
#include <vector>

namespace sprite::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::string to_string() const;
  void print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sprite::util
