#include "util/table.h"

#include <cstdio>

#include "util/assert.h"

namespace sprite::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SPRITE_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SPRITE_CHECK_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += "|";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (auto w : widths) {
    sep.append(w + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out = sep + emit_row(headers_) + sep;
  for (const auto& row : rows_) out += emit_row(row);
  out += sep;
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace sprite::util
