// Minimal binary codec for durable kernel images (checkpoint metadata).
//
// Fixed-width little-endian fields, length-prefixed strings/blobs. The
// decoder never throws: underflow latches !ok() and further reads return
// zero values, so callers validate once at the end — the idiom errno-style
// kernels use for pulling structs off untrusted disk blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sprite::util {

class Encoder {
 public:
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_i32(std::int32_t v) { put_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void put_bool(bool v) { out_.push_back(v ? 1 : 0); }
  void put_str(const std::string& s) {
    put_u64(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void put_bytes(const std::vector<std::uint8_t>& b) {
    put_u64(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }

  // LEB128 varint: 7 bits per byte, low first, high bit = continuation.
  // Small values (the common case in event streams) cost one byte instead
  // of eight; workload traces are delta-encoded specifically to feed this.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  // ZigZag-mapped varint for signed payloads near zero.
  void put_zigzag(std::int64_t v) {
    put_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
  }
  void put_u8(std::uint8_t v) { out_.push_back(v); }

  const std::vector<std::uint8_t>& bytes() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& in) : in_(in) {}

  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(in_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(i64()); }
  bool boolean() {
    if (!need(1)) return false;
    return in_[pos_++] != 0;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (!need(n)) return {};
    std::string s(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<std::uint8_t> blob() {
    const std::uint64_t n = u64();
    if (!need(n)) return {};
    std::vector<std::uint8_t> b(
        in_.begin() + static_cast<std::ptrdiff_t>(pos_),
        in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return b;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!need(1)) return 0;
      const std::uint8_t b = in_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    ok_ = false;  // > 10 continuation bytes: not a valid varint
    return 0;
  }
  std::int64_t zigzag() {
    const std::uint64_t v = varint();
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return in_[pos_++];
  }

  // False once any read ran past the end; data decoded after that point is
  // garbage and the whole record must be rejected.
  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == in_.size(); }

 private:
  bool need(std::uint64_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sprite::util
