#include "util/status.h"

namespace sprite::util {

const char* err_name(Err e) {
  switch (e) {
    case Err::kOk: return "OK";
    case Err::kNoEnt: return "NOENT";
    case Err::kBadF: return "BADF";
    case Err::kAccess: return "ACCESS";
    case Err::kExist: return "EXIST";
    case Err::kInval: return "INVAL";
    case Err::kBusy: return "BUSY";
    case Err::kAgain: return "AGAIN";
    case Err::kTimedOut: return "TIMEDOUT";
    case Err::kNotMigratable: return "NOTMIGRATABLE";
    case Err::kVersionSkew: return "VERSIONSKEW";
    case Err::kNoSpace: return "NOSPACE";
    case Err::kSrch: return "SRCH";
    case Err::kChild: return "CHILD";
    case Err::kIntr: return "INTR";
    case Err::kStale: return "STALE";
    case Err::kNotSupported: return "NOTSUPPORTED";
    case Err::kWouldBlock: return "WOULDBLOCK";
    case Err::kPipe: return "PIPE";
  }
  return "UNKNOWN";
}

}  // namespace sprite::util
