// Statistics accumulators used by tests and the benchmark harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace sprite::util {

// Streaming mean/variance/min/max (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  std::string summary() const;  // "n=.. mean=.. sd=.. min=.. max=.."

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact-sample distribution: keeps every observation, provides quantiles.
// Fine for the simulation's data volumes (≤ millions of points).
class Distribution {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }

  std::size_t count() const { return xs_.size(); }
  double mean() const;
  // q in [0,1]; nearest-rank. Returns 0 when empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

// Fixed-boundary histogram for time-series style reporting.
class Histogram {
 public:
  // Buckets: [b0,b1), [b1,b2), ..., plus underflow/overflow.
  explicit Histogram(std::vector<double> bounds);

  void add(double x);
  std::int64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::size_t num_buckets() const { return counts_.size(); }
  std::int64_t total() const { return total_; }
  std::string ascii(int width = 40) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> counts_;  // size bounds_.size() + 1
  std::int64_t total_ = 0;
};

}  // namespace sprite::util
