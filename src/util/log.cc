#include "util/log.h"

#include <cstdio>

namespace sprite::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::function<std::int64_t()> g_time_source;
std::function<void(const char*, const char*)> g_trace_sink;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_time_source(std::function<std::int64_t()> now_us) {
  g_time_source = std::move(now_us);
}

void set_log_trace_sink(
    std::function<void(const char* tag, const char* body)> sink) {
  g_trace_sink = std::move(sink);
}

bool log_trace_sink_active() { return static_cast<bool>(g_trace_sink); }

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  const bool to_console = static_cast<int>(level) >= static_cast<int>(g_level);
  const bool to_trace = level == LogLevel::kTrace && g_trace_sink;
  if (!to_console && !to_trace) return;
  char body[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);
  if (to_trace) g_trace_sink(tag, body);
  if (!to_console) return;
  if (g_time_source) {
    const std::int64_t us = g_time_source();
    std::fprintf(stderr, "[%s %10.3fms %-4s] %s\n", level_name(level),
                 static_cast<double>(us) / 1000.0, tag, body);
  } else {
    std::fprintf(stderr, "[%s %-4s] %s\n", level_name(level), tag, body);
  }
}

}  // namespace sprite::util
