// Deterministic pseudo-random number generation for the simulation.
//
// Every stochastic component draws from its own Rng stream, seeded from a
// single experiment seed, so results are reproducible bit-for-bit regardless
// of event interleaving elsewhere in the simulation.
//
// The generator is xoshiro256++ (Blackman & Vigna), chosen for speed and
// statistical quality; distributions are implemented directly so output does
// not depend on the C++ standard library's unspecified distribution
// algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.h"

namespace sprite::util {

class Rng {
 public:
  // Seeds the stream with SplitMix64 expansion of `seed`, so nearby seeds
  // yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives an independent child stream; used to give each simulated
  // component its own stream from one experiment seed.
  Rng fork();

  // Uniform bits over [0, 2^64).
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Two-phase hyperexponential: with probability p the draw has mean m1,
  // otherwise mean m2. Used to reproduce Zhou's heavy-tailed process
  // lifetimes (mean 1.5 s, sd 19.1 s).
  double hyperexponential(double p, double m1, double m2);

  // Normal via Box-Muller (no state carried between calls).
  double normal(double mean, double stddev);

  // Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  // Uniformly chosen index into a container of the given size (> 0).
  std::size_t index(std::size_t size);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Draws k distinct indices from [0, n). Precondition: k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace sprite::util
