// HostMonitor: Sprite Recov-style in-protocol failure detection.
//
// Each kernel tracks every peer it *depends on* through observable evidence
// only — RPC traffic received (every message carries the sender's boot
// epoch), exhausted retransmissions, and periodic low-cost echo probes — and
// runs a per-peer state machine:
//
//              evidence of life                 exhausted retries
//        +------------------------ up <------------------------------+
//        |                          |  note_unreachable              |
//        v                          v                                |
//   (no state)                   suspect --- silent for          same epoch:
//                                   |        recov_down_after --> down
//                                   |  same epoch: false suspicion     |
//                                   +--> up (resume parked work)       |
//                 epoch jump at any state: peer REBOOTED               |
//                 (run down-recovery for the old incarnation,          |
//                  then reboot observers, then mark up)                |
//                 same epoch from down: peer REINTEGRATED -------------+
//                 (partition healed: resume, un-revoke nothing)
//
// Probing is interest-driven, as in Sprite's Recov_RebootRegister: the
// monitor only echoes peers some subsystem currently depends on (pending
// RPCs, foreign processes' home machines, home records' remote locations,
// residual copy-on-reference images, reservations, migd grants). A quiet
// cluster sends no detection traffic at all.
//
// All peer_crashed-style notifications in the kernel originate here: the
// simulator never tells survivors about a crash (kern::Host::peer_crashed
// CHECKs that it is running inside a monitor notification).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "rpc/rpc.h"
#include "sim/costs.h"
#include "sim/ids.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace sprite::recov {

enum class PeerState { kUp, kSuspect, kDown };
const char* peer_state_name(PeerState s);

class HostMonitor : public rpc::PeerLiveness {
 public:
  using Observer = std::function<void(sim::HostId)>;
  // Appends the peers this subsystem currently depends on (duplicates fine).
  using InterestProvider = std::function<void(std::vector<sim::HostId>&)>;

  HostMonitor(sim::Simulator& sim, rpc::RpcNode& rpc, const sim::Costs& costs);

  // Registers the kRecov echo responder.
  void register_services();
  // Begins the periodic probe tick (boot-time; call again after reboot).
  void start();
  // This host crashed: stop probing, forget every peer (the table was in
  // volatile memory). Observer and provider registrations survive — they
  // are boot configuration, like RPC service registrations.
  void crash_reset();

  // ---- rpc::PeerLiveness (evidence feed from the RPC layer) ----
  void note_alive(sim::HostId peer, std::uint32_t epoch) override;
  void note_unreachable(sim::HostId peer) override;
  State state(sim::HostId peer) const override;

  PeerState peer_state(sim::HostId peer) const;

  // ---- Observers (fired from the state machine, never the simulator) ----
  // Peer declared down, or an epoch jump proved the old incarnation died
  // undetected: reap dependent state.
  void add_peer_down_observer(Observer fn);
  // Epoch jump: the peer is back as a new incarnation (fires after the down
  // observers have reaped the old one).
  void add_peer_rebooted_observer(Observer fn);
  // A peer marked down reappeared with the *same* epoch: it was partitioned,
  // not dead. In-flight work resumes; nothing was revoked on its side.
  void add_peer_reintegrated_observer(Observer fn);

  void add_interest_provider(InterestProvider fn);

  // True while a peer-down observer cascade runs (see header comment).
  bool notifying() const { return notifying_ != 0; }

  // ---- Diagnostics (starvation dump, tests) ----
  struct PeerInfo {
    sim::HostId peer = sim::kInvalidHost;
    PeerState state = PeerState::kUp;
    std::uint32_t epoch = 0;
    sim::Time last_heard;
    sim::Time suspect_since;
    bool echo_inflight = false;
  };
  std::vector<PeerInfo> table() const;

 private:
  struct Peer {
    PeerState st = PeerState::kUp;
    std::uint32_t epoch = 0;  // 0 = never heard from
    sim::Time last_heard;
    sim::Time suspect_since;
    bool echo_inflight = false;
  };

  void tick();
  void arm_tick();
  void send_echo(sim::HostId peer);
  void declare_down(sim::HostId peer);
  void fire_down(sim::HostId peer);
  std::set<sim::HostId> interests() const;

  sim::Simulator& sim_;
  rpc::RpcNode& rpc_;
  const sim::Costs& costs_;
  sim::HostId self_;

  std::map<sim::HostId, Peer> peers_;
  std::vector<Observer> down_observers_;
  std::vector<Observer> rebooted_observers_;
  std::vector<Observer> reintegrated_observers_;
  std::vector<InterestProvider> providers_;
  bool ticking_ = false;
  sim::EventHandle tick_ev_;
  int notifying_ = 0;

  trace::Counter* c_suspects_;
  trace::Counter* c_downs_;
  trace::Counter* c_false_suspects_;
  trace::Counter* c_reboots_;
  trace::Counter* c_reintegrated_;
  trace::Counter* c_echoes_;
};

}  // namespace sprite::recov
