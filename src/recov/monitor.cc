#include "recov/monitor.h"

#include <string>

#include "util/assert.h"
#include "util/log.h"

namespace sprite::recov {

using sim::HostId;
using sim::Time;

const char* peer_state_name(PeerState s) {
  switch (s) {
    case PeerState::kUp: return "up";
    case PeerState::kSuspect: return "suspect";
    case PeerState::kDown: return "down";
  }
  return "?";
}

HostMonitor::HostMonitor(sim::Simulator& sim, rpc::RpcNode& rpc,
                         const sim::Costs& costs)
    : sim_(sim), rpc_(rpc), costs_(costs), self_(rpc.host()) {
  trace::Registry& tr = sim_.trace();
  c_suspects_ = &tr.counter("recov.peer.suspect", self_);
  c_downs_ = &tr.counter("recov.peer.down", self_);
  c_false_suspects_ = &tr.counter("recov.suspect.false", self_);
  c_reboots_ = &tr.counter("recov.peer.rebooted", self_);
  c_reintegrated_ = &tr.counter("recov.peer.reintegrated", self_);
  c_echoes_ = &tr.counter("recov.echo.sent", self_);
}

void HostMonitor::register_services() {
  rpc_.register_service(
      rpc::ServiceId::kRecov,
      [](HostId, const rpc::Request&, std::function<void(rpc::Reply)> respond) {
        respond(rpc::Reply{util::Status::ok(), nullptr});
      });
}

void HostMonitor::start() {
  if (ticking_) return;
  ticking_ = true;
  arm_tick();
}

void HostMonitor::crash_reset() {
  tick_ev_.cancel();
  ticking_ = false;
  peers_.clear();
  notifying_ = 0;
}

void HostMonitor::add_peer_down_observer(Observer fn) {
  down_observers_.push_back(std::move(fn));
}
void HostMonitor::add_peer_rebooted_observer(Observer fn) {
  rebooted_observers_.push_back(std::move(fn));
}
void HostMonitor::add_peer_reintegrated_observer(Observer fn) {
  reintegrated_observers_.push_back(std::move(fn));
}
void HostMonitor::add_interest_provider(InterestProvider fn) {
  providers_.push_back(std::move(fn));
}

rpc::PeerLiveness::State HostMonitor::state(HostId peer) const {
  switch (peer_state(peer)) {
    case PeerState::kUp: return State::kUp;
    case PeerState::kSuspect: return State::kSuspect;
    case PeerState::kDown: return State::kDown;
  }
  return State::kUp;
}

PeerState HostMonitor::peer_state(HostId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? PeerState::kUp : it->second.st;
}

void HostMonitor::fire_down(HostId peer) {
  ++notifying_;
  for (const Observer& fn : down_observers_) fn(peer);
  --notifying_;
}

void HostMonitor::note_alive(HostId peer, std::uint32_t epoch) {
  if (peer == self_) return;
  Peer& p = peers_[peer];
  p.last_heard = sim_.now();
  const bool jump = p.epoch != 0 && epoch > p.epoch;
  p.epoch = epoch;
  if (jump) {
    // The peer rebooted. If it was never declared down, its old incarnation
    // died undetected: run the down-recovery path first so dependents are
    // reaped exactly once, then announce the new incarnation.
    const bool already_reaped = p.st == PeerState::kDown;
    p.st = PeerState::kUp;
    p.suspect_since = Time::zero();
    c_reboots_->inc();
    if (trace::Registry& tr = sim_.trace(); tr.tracing())
      tr.instant("recov", "peer_rebooted", self_, -1,
                 {{"peer", std::to_string(peer)}});
    if (!already_reaped) fire_down(peer);
    for (const Observer& fn : rebooted_observers_) fn(peer);
    // Parked calls restart against the new incarnation (which re-executes
    // them — the documented retry-across-reboot semantics).
    rpc_.resume_calls_to(peer);
    return;
  }
  switch (p.st) {
    case PeerState::kUp:
      break;
    case PeerState::kSuspect:
      p.st = PeerState::kUp;
      p.suspect_since = Time::zero();
      c_false_suspects_->inc();
      if (trace::Registry& tr = sim_.trace(); tr.tracing())
        tr.instant("recov", "suspicion_cleared", self_, -1,
                   {{"peer", std::to_string(peer)}});
      rpc_.resume_calls_to(peer);
      break;
    case PeerState::kDown:
      // Same incarnation after a down verdict: the peer was partitioned,
      // not dead. Reintegrate — resume what still waits, revoke nothing.
      p.st = PeerState::kUp;
      p.suspect_since = Time::zero();
      c_reintegrated_->inc();
      LOG_INFO("recov", "host%d reintegrated peer host%d (same epoch %u)",
               self_, peer, epoch);
      if (trace::Registry& tr = sim_.trace(); tr.tracing())
        tr.instant("recov", "peer_reintegrated", self_, -1,
                   {{"peer", std::to_string(peer)}});
      for (const Observer& fn : reintegrated_observers_) fn(peer);
      rpc_.resume_calls_to(peer);
      break;
  }
}

void HostMonitor::note_unreachable(HostId peer) {
  if (peer == self_) return;
  Peer& p = peers_[peer];
  switch (p.st) {
    case PeerState::kUp:
      p.st = PeerState::kSuspect;
      p.suspect_since = sim_.now();
      c_suspects_->inc();
      sim_.trace().flight_note("recov.suspect", "raised", self_, -1, peer);
      LOG_INFO("recov", "host%d suspects host%d", self_, peer);
      if (trace::Registry& tr = sim_.trace(); tr.tracing())
        tr.instant("recov", "peer_suspect", self_, -1,
                   {{"peer", std::to_string(peer)}});
      break;
    case PeerState::kSuspect:
      if (sim_.now() - p.suspect_since >= costs_.recov_down_after)
        declare_down(peer);
      break;
    case PeerState::kDown:
      break;
  }
}

void HostMonitor::declare_down(HostId peer) {
  Peer& p = peers_[peer];
  p.st = PeerState::kDown;
  c_downs_->inc();
  LOG_INFO("recov", "host%d declares host%d down", self_, peer);
  // A down verdict is the moment fault forensics matter: the flight tail
  // shows what the cluster was doing while the evidence accumulated. The
  // full dump is gated (partition matrices reach verdicts by design).
  sim_.trace().flight_note("recov.down", "verdict", self_, -1, peer);
  if (sim_.trace().dump_on_down_verdict())
    sim_.trace().dump_flight("down verdict", 64);
  if (trace::Registry& tr = sim_.trace(); tr.tracing())
    tr.instant("recov", "peer_down", self_, -1,
               {{"peer", std::to_string(peer)}});
  // Stalled calls fail first (their callbacks see the verdict), then the
  // kernel-wide reap runs.
  rpc_.fail_calls_to(peer);
  fire_down(peer);
}

std::set<HostId> HostMonitor::interests() const {
  std::set<HostId> out;
  std::vector<HostId> scratch;
  for (const InterestProvider& fn : providers_) fn(scratch);
  // Pending RPC work is always of interest; the monitor's own probes are
  // not (they would make interest self-sustaining forever).
  for (const auto& pc : rpc_.pending_calls())
    if (!pc.probe) scratch.push_back(pc.dst);
  for (HostId h : scratch)
    if (h != self_ && h != sim::kInvalidHost) out.insert(h);
  return out;
}

void HostMonitor::tick() {
  const Time now = sim_.now();
  std::set<HostId> want = interests();
  // Pursue open suspicions to a verdict even if the interest that raised
  // them has since been reaped.
  for (const auto& [h, p] : peers_)
    if (p.st == PeerState::kSuspect) want.insert(h);
  for (HostId h : want) {
    Peer& p = peers_[h];
    if (p.echo_inflight) continue;
    if (p.st == PeerState::kDown) continue;  // re-detection is organic
    if (p.st == PeerState::kUp && p.epoch != 0 &&
        now - p.last_heard < costs_.recov_echo_interval)
      continue;  // heard from recently: no probe needed
    send_echo(h);
  }
}

void HostMonitor::arm_tick() {
  const Time next = sim_.now() + costs_.recov_echo_interval;
  if (next > sim_.horizon()) {
    ticking_ = false;
    return;
  }
  tick_ev_ = sim_.at(next, [this] {
    tick();
    arm_tick();
  });
}

void HostMonitor::send_echo(HostId peer) {
  Peer& p = peers_[peer];
  p.echo_inflight = true;
  c_echoes_->inc();
  rpc_.call(peer, rpc::ServiceId::kRecov, 0, nullptr,
            [this, peer](util::Result<rpc::Reply> r) {
              auto it = peers_.find(peer);
              if (it == peers_.end()) return;  // crash_reset meanwhile
              it->second.echo_inflight = false;
              // A reply already fed note_alive through the RPC layer; only
              // the failure is new evidence.
              if (!r.is_ok()) note_unreachable(peer);
            },
            rpc::CallOpts{.max_retries = 0, .no_park = true, .probe = true});
}

std::vector<HostMonitor::PeerInfo> HostMonitor::table() const {
  std::vector<PeerInfo> out;
  out.reserve(peers_.size());
  for (const auto& [h, p] : peers_)
    out.push_back(PeerInfo{h, p.st, p.epoch, p.last_heard, p.suspect_since,
                           p.echo_inflight});
  return out;
}

}  // namespace sprite::recov
