// checkpoint_demo: surviving the machine you borrowed.
//
// A long simulation runs on a borrowed workstation with the per-host
// autocheckpoint daemon enabled: a full base image first, then cheap
// incremental captures of just the pages dirtied since. Mid-run the
// borrowed machine crashes without warning. The home node's failure
// detector notices, consults its restart table, and revives the process
// from the latest committed image on a third machine — where it finishes
// correctly. Migration moves live processes; checkpointing is what lets
// them outlive their host.
//
//   ./example_checkpoint_demo [--trace-out checkpoint.trace.json]
#include <cstdio>
#include <string>

#include "ckpt/manager.h"
#include "core/sprite.h"
#include "proc/table.h"

using sprite::core::SpriteCluster;
using sprite::proc::ScriptBuilder;
using sprite::sim::Time;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--trace-out") trace_path = argv[i + 1];

  SpriteCluster cluster({.workstations = 4, .seed = 9});
  sprite::trace::Registry& tr = cluster.sim().trace();
  if (!trace_path.empty()) {
    tr.set_tracing(true);
    for (std::size_t h = 0; h < cluster.kernel().num_hosts(); ++h) {
      auto id = static_cast<sprite::sim::HostId>(h);
      tr.set_host_name(id, cluster.kernel().host(id).name());
    }
  }
  cluster.warm_up();

  // The simulation: a big first phase dirties the working set, then long
  // compute stretches each touch a modest slice of it — ideal incremental
  // checkpoint behaviour.
  ScriptBuilder b;
  b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, 512, true});
  for (int phase = 0; phase < 10; ++phase)
    b.compute(Time::sec(20))
        .act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, 24, true});
  b.exit(0);
  cluster.install_program("/bin/sim", b.image(16, 512, 4));

  const auto home = cluster.workstation(0);
  const auto borrowed = cluster.workstation(1);
  const auto pid = cluster.spawn(home, "/bin/sim", {});
  cluster.run_for(Time::msec(100));
  auto st = cluster.migrate(pid, borrowed);
  std::printf("simulation %llu -> %s (%s)\n",
              static_cast<unsigned long long>(pid),
              cluster.host(borrowed).name().c_str(), st.to_string().c_str());

  // Autocheckpoint on the borrowed host: every 15 s, or sooner if 64 pages
  // have been dirtied since the last capture.
  auto& ck = cluster.host(borrowed).ckpt();
  ck.set_auto_policy(Time::sec(15), 64);
  ck.enable_autocheckpoint(true);
  std::printf("autocheckpoint armed on %s (15 s interval / 64-page dirty "
              "threshold)\n",
              cluster.host(borrowed).name().c_str());

  cluster.run_for(Time::sec(50));
  {
    const auto& s = ck.stats();
    std::printf("after 50 s: %lld captures (%lld full + %lld incremental), "
                "%lld pages written\n",
                static_cast<long long>(s.captures),
                static_cast<long long>(s.full_bases),
                static_cast<long long>(s.incrementals),
                static_cast<long long>(s.pages_captured));
  }

  std::printf("\n*** %s loses power ***\n",
              cluster.host(borrowed).name().c_str());
  cluster.kernel().crash_host(borrowed);

  // The home's failure detector needs a few echo intervals to declare the
  // host down; then the restart table revives the process elsewhere.
  cluster.run_for(Time::sec(30));
  const auto now_on = cluster.locate(pid);
  std::printf("restarted on %s\n", cluster.host(now_on).name().c_str());
  std::int64_t restarts = 0, restored = 0;
  for (int i = 0; i < cluster.num_workstations(); ++i) {
    const auto& s = cluster.host(cluster.workstation(i)).ckpt().stats();
    restarts += s.restarts;
    restored += s.pages_restored;
  }
  std::printf("restarts: %lld, pages restored from image: %lld\n",
              static_cast<long long>(restarts),
              static_cast<long long>(restored));

  cluster.kernel().reboot_host(borrowed);
  const int status = cluster.wait(pid);
  std::printf("simulation finished with status %d (work since the last "
              "checkpoint was re-run; nothing was lost)\n",
              status);

  if (!trace_path.empty()) {
    const auto ws = tr.write_chrome_json(trace_path);
    if (ws.is_ok())
      std::printf("\ntrace: %zu events -> %s\n", tr.events().size(),
                  trace_path.c_str());
  }
  return status == 0 && restarts == 1 ? 0 : 1;
}
