// Quickstart: the SpriteCluster API in one tour.
//
// Builds a small cluster, runs a program, transparently migrates it mid-run,
// and shows that its identity (pid, hostname, open files) survives the move
// — the property the whole system exists to provide.
//
//   ./example_quickstart
#include <cstdio>

#include "core/sprite.h"

using sprite::core::SpriteCluster;
using sprite::proc::Action;
using sprite::proc::ScriptBuilder;
using sprite::proc::ScriptProgram;
using sprite::sim::Time;

int main() {
  SpriteCluster cluster({.workstations = 4});
  std::printf("cluster: %d workstations + 1 file server on one Ethernet\n\n",
              cluster.num_workstations());

  // A program that records its identity, sleeps (we migrate it then),
  // records identity again, and writes both observations to a file.
  ScriptBuilder b;
  b.act(sprite::proc::SysGetPid{})
      .step([](ScriptProgram::Ctx& c) {
        c.locals["pid"] = c.view->rv;
        return sprite::proc::SysGetHostName{};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.note("before-migration host=" + c.view->text);
        return sprite::proc::Pause{Time::sec(2)};
      })
      .act(sprite::proc::SysGetHostName{})
      .step([](ScriptProgram::Ctx& c) {
        c.note("after-migration  host=" + c.view->text);
        return sprite::proc::SysOpen{"/report",
                                     sprite::fs::OpenFlags::create_rw()};
      })
      .step([](ScriptProgram::Ctx& c) {
        c.locals["fd"] = c.view->rv;
        std::string out = "pid=" + std::to_string(c.locals["pid"]) + "\n";
        for (const auto& line : c.trace) out += line + "\n";
        return sprite::proc::SysWrite{
            static_cast<int>(c.locals["fd"]),
            sprite::fs::Bytes(out.begin(), out.end()), 0};
      })
      .step([](ScriptProgram::Ctx& c) {
        return sprite::proc::SysFsync{static_cast<int>(c.locals["fd"])};
      })
      .exit(0);
  cluster.install_program("/bin/tour", b.image());

  const auto home = cluster.workstation(0);
  const auto away = cluster.workstation(2);
  const auto pid = cluster.spawn(home, "/bin/tour", {});
  std::printf("spawned pid %llu on %s (its home machine)\n",
              static_cast<unsigned long long>(pid),
              cluster.host(home).name().c_str());

  cluster.run_for(Time::msec(500));  // it is now sleeping
  auto st = cluster.migrate(pid, away);
  std::printf("migrate -> %s: %s\n", cluster.host(away).name().c_str(),
              st.to_string().c_str());
  std::printf("kernel says the process now runs on %s\n",
              cluster.host(cluster.locate(pid)).name().c_str());

  const int status = cluster.wait(pid);
  std::printf("process exited with status %d\n\n", status);

  // Read the report it wrote through the shared file system.
  auto* server = cluster.kernel().file_server().fs_server();
  auto stat = server->stat_path("/report");
  auto data = server->read_direct(stat->id, 0, stat->size);
  std::printf("contents of /report:\n%s\n",
              std::string(data->begin(), data->end()).c_str());

  const auto& rec = cluster.host(home).mig().last_record();
  std::printf("migration record: total %.1f ms, frozen for %.1f ms, "
              "%lld stream(s) moved\n",
              rec.total_time().ms(), rec.freeze_time().ms(),
              static_cast<long long>(rec.streams_moved));
  std::printf("\nNote: gethostname reported the HOME machine both times — "
              "that is Sprite's transparency.\n");
  return status;
}
