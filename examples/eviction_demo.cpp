// eviction_demo: workstation autonomy.
//
// A researcher farms three long simulations out to idle colleagues'
// workstations. One colleague comes back and touches the keyboard: every
// foreign process is evicted home within seconds, and still finishes
// correctly. "The nice thing about an Alto is that it doesn't get faster at
// night" — but a Sprite network does, without sacrificing anyone's machine.
//
//   ./example_eviction_demo [--trace-out eviction.trace.json]
//
// With --trace-out, the run is recorded as Chrome trace_event JSON — open it
// in Perfetto (ui.perfetto.dev) to see the migration spans and the eviction.
#include <cstdio>
#include <string>

#include "core/sprite.h"

using sprite::core::SpriteCluster;
using sprite::proc::ScriptBuilder;
using sprite::sim::Time;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--trace-out") trace_path = argv[i + 1];

  SpriteCluster cluster({.workstations = 5, .seed = 5});
  sprite::trace::Registry& tr = cluster.sim().trace();
  if (!trace_path.empty()) {
    tr.set_tracing(true);
    for (std::size_t h = 0; h < cluster.kernel().num_hosts(); ++h) {
      auto id = static_cast<sprite::sim::HostId>(h);
      tr.set_host_name(id, cluster.kernel().host(id).name());
    }
  }
  cluster.warm_up();

  // A simulation: dirty a decent working set, then grind CPU.
  ScriptBuilder b;
  b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, 512, true})
      .compute(Time::minutes(3))
      .exit(0);
  cluster.install_program("/bin/sim", b.image(16, 512, 4));

  const auto owner = cluster.workstation(0);
  auto hosts = cluster.request_idle_hosts(owner, 3);
  std::printf("migd granted %zu idle hosts\n", hosts.size());

  std::vector<sprite::proc::Pid> pids;
  for (auto h : hosts) {
    auto pid = cluster.spawn(owner, "/bin/sim", {});
    cluster.run_for(Time::msec(100));
    auto st = cluster.migrate(pid, h);
    std::printf("  simulation %llu -> %s (%s)\n",
                static_cast<unsigned long long>(pid),
                cluster.host(h).name().c_str(), st.to_string().c_str());
    pids.push_back(pid);
  }

  cluster.run_for(Time::sec(30));
  const auto victim = hosts[0];
  std::printf("\n%s's owner returns and touches the keyboard...\n",
              cluster.host(victim).name().c_str());
  const auto t0 = cluster.sim().now();
  cluster.host(victim).note_user_input();
  cluster.run_for(Time::sec(5));
  std::printf("foreign processes on %s after eviction: %zu "
              "(reclaimed in < 5 s of simulated time; eviction began at "
              "%.1f s)\n",
              cluster.host(victim).name().c_str(),
              cluster.host(victim).procs().foreign_processes().size(),
              t0.s());

  std::printf("\nevicted simulation now runs on %s (its home)\n",
              cluster.host(cluster.locate(pids[0])).name().c_str());

  for (auto pid : pids) {
    const int status = cluster.wait(pid);
    std::printf("simulation %llu finished with status %d on %s\n",
                static_cast<unsigned long long>(pid), status,
                cluster.host(sprite::proc::pid_home(pid)).name().c_str());
  }

  if (!trace_path.empty()) {
    const auto s = tr.write_chrome_json(trace_path);
    std::printf("\ntrace: %zu events -> %s (%s)\n", tr.events().size(),
                trace_path.c_str(), s.to_string().c_str());
    std::printf("\n%s", tr.metrics_report().c_str());
  }
  return 0;
}
