// pipeline: communicating processes and migration.
//
// A producer and a consumer talk through a pipe — whose buffer lives at the
// file server, so neither end knows where the other runs. Mid-stream the
// producer is migrated to another workstation; the consumer sees an
// uninterrupted, in-order byte stream. "The migration of a process is
// transparent to the processes with which it communicates."
//
//   ./example_pipeline
#include <cstdio>

#include "core/sprite.h"

using sprite::core::SpriteCluster;
using sprite::proc::Action;
using sprite::proc::ScriptBuilder;
using sprite::proc::ScriptProgram;
using sprite::sim::Time;

int main() {
  SpriteCluster cluster({.workstations = 3, .seed = 7});

  // One program, two roles after fork: the child produces ten numbered
  // chunks (sleeping between them); the parent consumes until EOF and
  // verifies the sequence.
  ScriptBuilder b;
  b.act(sprite::proc::SysPipe{});
  b.step([](ScriptProgram::Ctx& c) {
    c.locals["rd"] = c.view->rv;
    c.locals["wr"] = c.view->aux;
    return sprite::proc::SysFork{};
  });
  b.step([](ScriptProgram::Ctx& c) -> Action {
    c.locals["child"] = c.view->is_child ? 1 : 0;
    if (c.locals["child"])
      return sprite::proc::SysClose{static_cast<int>(c.locals["rd"])};
    return sprite::proc::SysClose{static_cast<int>(c.locals["wr"])};
  });
  const int loop = b.next_index();
  b.step([loop](ScriptProgram::Ctx& c) -> Action {
    if (c.locals["child"]) {
      if (c.locals["i"] >= 10) return sprite::proc::SysExit{0};
      c.jump(loop + 1);
      return sprite::proc::Pause{Time::msec(250)};
    }
    c.jump(loop + 2);
    return sprite::proc::SysRead{static_cast<int>(c.locals["rd"]), 64};
  });
  b.step([loop](ScriptProgram::Ctx& c) -> Action {  // producer body
    const std::string chunk = "<" + std::to_string(c.locals["i"]++) + ">";
    c.jump(loop);
    return sprite::proc::SysWrite{static_cast<int>(c.locals["wr"]),
                                  sprite::fs::Bytes(chunk.begin(), chunk.end()),
                                  0};
  });
  b.step([loop](ScriptProgram::Ctx& c) -> Action {  // consumer body
    if (!c.view->data.empty()) {
      c.note(std::string(c.view->data.begin(), c.view->data.end()));
      c.jump(loop);
      return sprite::proc::Compute{Time::zero()};
    }
    std::string all, expect;
    for (const auto& t : c.trace) all += t;
    for (int i = 0; i < 10; ++i) expect += "<" + std::to_string(i) + ">";
    return sprite::proc::SysExit{all == expect ? 0 : 1};
  });
  cluster.install_program("/bin/pipeline", b.image());

  const auto parent = cluster.spawn(cluster.workstation(0), "/bin/pipeline", {});
  std::printf("producer | consumer running on %s\n",
              cluster.host(cluster.workstation(0)).name().c_str());

  // Let a few chunks flow, then migrate the producer (the forked child).
  cluster.run_for(Time::msec(900));
  sprite::proc::Pid producer = sprite::proc::kInvalidPid;
  for (const auto& pcb :
       cluster.host(cluster.workstation(0)).procs().local_processes()) {
    if (pcb->pid != parent) producer = pcb->pid;
  }
  auto st = cluster.migrate(producer, cluster.workstation(2));
  std::printf("migrated the producer to %s mid-stream: %s\n",
              cluster.host(cluster.workstation(2)).name().c_str(),
              st.to_string().c_str());

  const int produced = cluster.wait(producer);
  const int consumed = cluster.wait(parent);
  std::printf("producer exit=%d, consumer exit=%d (0 means every chunk "
              "arrived, in order)\n",
              produced, consumed);
  std::printf("\nThe pipe's buffer lives at the file server; migration moved "
              "the producer's\nstream attribution, and the consumer never "
              "noticed.\n");
  return consumed;
}
