// pmake_farm: the thesis's motivating scenario — a user types `pmake` and
// compilations transparently spread across the idle workstations.
//
// Runs the same 16-file build serially on one machine and in parallel with
// exec-time migration to hosts granted by migd, and reports the speedup.
//
//   ./example_pmake_farm
#include <cstdio>

#include "core/sprite.h"

using sprite::apps::Pmake;
using sprite::apps::make_compile_graph;
using sprite::core::SpriteCluster;
using sprite::sim::Time;

namespace {

Pmake::Result build(SpriteCluster& cluster, bool parallel) {
  Pmake::Options opt;
  opt.controller = cluster.workstation(0);
  opt.max_jobs = parallel ? 12 : 1;
  opt.facility = parallel ? &cluster.load_sharing() : nullptr;
  Pmake pmake(cluster.kernel(), opt,
              make_compile_graph(/*n=*/16, /*shared_headers=*/4,
                                 /*compile_cpu=*/Time::sec(4),
                                 /*link_cpu=*/Time::sec(2)));
  pmake.prepare();
  bool done = false;
  Pmake::Result result;
  pmake.run([&](Pmake::Result r) {
    result = r;
    done = true;
  });
  cluster.kernel().run_until_done([&] { return done; });
  return result;
}

}  // namespace

int main() {
  std::printf("building 16 objects + link; each compile needs 4 s of CPU\n\n");

  SpriteCluster serial({.workstations = 10, .seed = 21});
  const auto s = build(serial, /*parallel=*/false);
  std::printf("serial make   : %6.1f s (1 host, %d jobs)\n", s.makespan.s(),
              s.jobs);

  SpriteCluster parallel({.workstations = 10, .seed = 21});
  parallel.warm_up();  // let workstations pass the idle threshold
  const auto p = build(parallel, /*parallel=*/true);
  std::printf("parallel pmake: %6.1f s (%d of %d jobs ran remotely)\n",
              p.makespan.s(), p.remote_jobs, p.jobs);
  std::printf("speedup       : %5.2fx\n\n", s.makespan.s() / p.makespan.s());

  const auto& fss = parallel.kernel().file_server().fs_server()->stats();
  std::printf("file server during the parallel build: %lld opens, "
              "%lld pathname components looked up\n",
              static_cast<long long>(fss.opens),
              static_cast<long long>(fss.lookup_components));
  std::printf("server name lookups are the scaling bottleneck the thesis "
              "identifies (see bench_pmake_speedup).\n");
  return 0;
}
