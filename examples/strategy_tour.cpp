// strategy_tour: the virtual-memory transfer design space (thesis §4.2.1).
//
// Migrates the same 4 MB-dirty process under each of the four strategies and
// prints what each one trades: freeze time, total time, bytes moved, and
// residual dependencies.
//
//   ./example_strategy_tour
#include <cstdio>

#include "core/sprite.h"
#include "util/table.h"

using sprite::core::SpriteCluster;
using sprite::mig::VmStrategy;
using sprite::proc::ScriptBuilder;
using sprite::sim::Time;

int main() {
  sprite::util::Table table({"strategy", "freeze ms", "total ms", "pages wired",
                             "pages flushed", "residual deps"});

  for (VmStrategy strategy :
       {VmStrategy::kSpriteFlush, VmStrategy::kWholeCopy, VmStrategy::kPreCopy,
        VmStrategy::kCopyOnRef}) {
    SpriteCluster cluster({.workstations = 3, .seed = 3});
    // Dirty 4 MB of heap, then keep computing (so pre-copy has something to
    // chase), with pauses at which migration can freeze cleanly.
    ScriptBuilder b;
    b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, 1024, true});
    for (int i = 0; i < 200; ++i) {
      b.act(sprite::proc::Touch{sprite::vm::Segment::kHeap, 0, 32, true})
          .compute(Time::msec(100));
    }
    b.exit(0);
    cluster.install_program("/bin/dirty", b.image(16, 1024, 4));

    const auto src = cluster.workstation(0);
    const auto dst = cluster.workstation(1);
    cluster.host(src).mig().set_strategy(strategy);

    auto pid = cluster.spawn(src, "/bin/dirty", {});
    cluster.run_for(Time::sec(3));  // working set is dirty now
    auto st = cluster.migrate(pid, dst);
    if (!st.is_ok()) {
      std::printf("%s: migration failed: %s\n",
                  sprite::mig::strategy_name(strategy),
                  st.to_string().c_str());
      continue;
    }
    const auto rec = cluster.host(src).mig().last_record();
    // Touch everything on the target so copy-on-reference pulls its pages.
    cluster.run_for(Time::sec(5));

    table.add_row({sprite::mig::strategy_name(strategy),
                   sprite::util::Table::num(rec.freeze_time().ms(), 1),
                   sprite::util::Table::num(rec.total_time().ms(), 1),
                   std::to_string(rec.pages_moved),
                   std::to_string(rec.pages_flushed),
                   std::to_string(cluster.host(src).mig().residual_spaces())});

    cluster.wait(pid);
  }

  std::printf("migrating a process with a 4 MB dirty heap, by strategy:\n\n");
  table.print();
  std::printf(
      "\nwhole-copy freezes the process for the whole image; pre-copy\n"
      "shrinks the freeze by copying while running (at the cost of resent\n"
      "pages); copy-on-reference resumes almost instantly but leaves the\n"
      "source serving pages for the process's lifetime; Sprite's flush\n"
      "pays the file server once and leaves no dependency on the source.\n");
  return 0;
}
