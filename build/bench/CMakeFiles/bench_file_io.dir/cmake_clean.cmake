file(REMOVE_RECURSE
  "CMakeFiles/bench_file_io.dir/bench_file_io.cc.o"
  "CMakeFiles/bench_file_io.dir/bench_file_io.cc.o.d"
  "bench_file_io"
  "bench_file_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_file_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
