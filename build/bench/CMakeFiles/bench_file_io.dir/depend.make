# Empty dependencies file for bench_file_io.
# This may be replaced when dependencies are built.
