# Empty dependencies file for bench_name_cache.
# This may be replaced when dependencies are built.
