file(REMOVE_RECURSE
  "CMakeFiles/bench_name_cache.dir/bench_name_cache.cc.o"
  "CMakeFiles/bench_name_cache.dir/bench_name_cache.cc.o.d"
  "bench_name_cache"
  "bench_name_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_name_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
