file(REMOVE_RECURSE
  "CMakeFiles/bench_policy.dir/bench_policy.cc.o"
  "CMakeFiles/bench_policy.dir/bench_policy.cc.o.d"
  "bench_policy"
  "bench_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
