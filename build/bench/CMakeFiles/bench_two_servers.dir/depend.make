# Empty dependencies file for bench_two_servers.
# This may be replaced when dependencies are built.
