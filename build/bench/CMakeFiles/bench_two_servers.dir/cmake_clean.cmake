file(REMOVE_RECURSE
  "CMakeFiles/bench_two_servers.dir/bench_two_servers.cc.o"
  "CMakeFiles/bench_two_servers.dir/bench_two_servers.cc.o.d"
  "bench_two_servers"
  "bench_two_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
