file(REMOVE_RECURSE
  "CMakeFiles/bench_pmake_speedup.dir/bench_pmake_speedup.cc.o"
  "CMakeFiles/bench_pmake_speedup.dir/bench_pmake_speedup.cc.o.d"
  "bench_pmake_speedup"
  "bench_pmake_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pmake_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
