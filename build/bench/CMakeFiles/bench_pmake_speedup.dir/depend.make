# Empty dependencies file for bench_pmake_speedup.
# This may be replaced when dependencies are built.
