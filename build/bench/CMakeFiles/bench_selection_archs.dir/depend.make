# Empty dependencies file for bench_selection_archs.
# This may be replaced when dependencies are built.
