file(REMOVE_RECURSE
  "CMakeFiles/bench_selection_archs.dir/bench_selection_archs.cc.o"
  "CMakeFiles/bench_selection_archs.dir/bench_selection_archs.cc.o.d"
  "bench_selection_archs"
  "bench_selection_archs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selection_archs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
