file(REMOVE_RECURSE
  "CMakeFiles/bench_host_selection.dir/bench_host_selection.cc.o"
  "CMakeFiles/bench_host_selection.dir/bench_host_selection.cc.o.d"
  "bench_host_selection"
  "bench_host_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
