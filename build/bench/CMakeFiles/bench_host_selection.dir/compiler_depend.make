# Empty compiler generated dependencies file for bench_host_selection.
# This may be replaced when dependencies are built.
