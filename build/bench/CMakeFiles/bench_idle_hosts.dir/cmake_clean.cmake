file(REMOVE_RECURSE
  "CMakeFiles/bench_idle_hosts.dir/bench_idle_hosts.cc.o"
  "CMakeFiles/bench_idle_hosts.dir/bench_idle_hosts.cc.o.d"
  "bench_idle_hosts"
  "bench_idle_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idle_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
