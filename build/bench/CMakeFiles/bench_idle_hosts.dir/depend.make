# Empty dependencies file for bench_idle_hosts.
# This may be replaced when dependencies are built.
