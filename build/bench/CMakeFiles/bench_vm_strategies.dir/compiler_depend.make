# Empty compiler generated dependencies file for bench_vm_strategies.
# This may be replaced when dependencies are built.
