file(REMOVE_RECURSE
  "CMakeFiles/bench_vm_strategies.dir/bench_vm_strategies.cc.o"
  "CMakeFiles/bench_vm_strategies.dir/bench_vm_strategies.cc.o.d"
  "bench_vm_strategies"
  "bench_vm_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vm_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
