file(REMOVE_RECURSE
  "CMakeFiles/bench_eviction.dir/bench_eviction.cc.o"
  "CMakeFiles/bench_eviction.dir/bench_eviction.cc.o.d"
  "bench_eviction"
  "bench_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
