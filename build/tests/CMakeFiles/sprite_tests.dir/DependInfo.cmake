
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/sprite_tests.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/apps_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/sprite_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/sprite_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/forwarding_test.cc" "tests/CMakeFiles/sprite_tests.dir/forwarding_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/forwarding_test.cc.o.d"
  "/root/repo/tests/fs_extra_test.cc" "tests/CMakeFiles/sprite_tests.dir/fs_extra_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/fs_extra_test.cc.o.d"
  "/root/repo/tests/fs_robustness_test.cc" "tests/CMakeFiles/sprite_tests.dir/fs_robustness_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/fs_robustness_test.cc.o.d"
  "/root/repo/tests/fs_test.cc" "tests/CMakeFiles/sprite_tests.dir/fs_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/fs_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/sprite_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/loadshare_test.cc" "tests/CMakeFiles/sprite_tests.dir/loadshare_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/loadshare_test.cc.o.d"
  "/root/repo/tests/migration_test.cc" "tests/CMakeFiles/sprite_tests.dir/migration_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/migration_test.cc.o.d"
  "/root/repo/tests/pipe_test.cc" "tests/CMakeFiles/sprite_tests.dir/pipe_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/pipe_test.cc.o.d"
  "/root/repo/tests/proc_test.cc" "tests/CMakeFiles/sprite_tests.dir/proc_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/proc_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/sprite_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rpc_test.cc" "tests/CMakeFiles/sprite_tests.dir/rpc_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/rpc_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/sprite_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/sprite_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/sprite_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/sprite_tests.dir/vm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sprite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
