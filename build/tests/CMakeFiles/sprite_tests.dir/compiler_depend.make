# Empty compiler generated dependencies file for sprite_tests.
# This may be replaced when dependencies are built.
