# Empty dependencies file for sprite.
# This may be replaced when dependencies are built.
