
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/pmake.cc" "src/CMakeFiles/sprite.dir/apps/pmake.cc.o" "gcc" "src/CMakeFiles/sprite.dir/apps/pmake.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/CMakeFiles/sprite.dir/apps/workload.cc.o" "gcc" "src/CMakeFiles/sprite.dir/apps/workload.cc.o.d"
  "/root/repo/src/core/sprite.cc" "src/CMakeFiles/sprite.dir/core/sprite.cc.o" "gcc" "src/CMakeFiles/sprite.dir/core/sprite.cc.o.d"
  "/root/repo/src/fs/client.cc" "src/CMakeFiles/sprite.dir/fs/client.cc.o" "gcc" "src/CMakeFiles/sprite.dir/fs/client.cc.o.d"
  "/root/repo/src/fs/pdev.cc" "src/CMakeFiles/sprite.dir/fs/pdev.cc.o" "gcc" "src/CMakeFiles/sprite.dir/fs/pdev.cc.o.d"
  "/root/repo/src/fs/server.cc" "src/CMakeFiles/sprite.dir/fs/server.cc.o" "gcc" "src/CMakeFiles/sprite.dir/fs/server.cc.o.d"
  "/root/repo/src/fs/types.cc" "src/CMakeFiles/sprite.dir/fs/types.cc.o" "gcc" "src/CMakeFiles/sprite.dir/fs/types.cc.o.d"
  "/root/repo/src/kern/cluster.cc" "src/CMakeFiles/sprite.dir/kern/cluster.cc.o" "gcc" "src/CMakeFiles/sprite.dir/kern/cluster.cc.o.d"
  "/root/repo/src/loadshare/central.cc" "src/CMakeFiles/sprite.dir/loadshare/central.cc.o" "gcc" "src/CMakeFiles/sprite.dir/loadshare/central.cc.o.d"
  "/root/repo/src/loadshare/distributed.cc" "src/CMakeFiles/sprite.dir/loadshare/distributed.cc.o" "gcc" "src/CMakeFiles/sprite.dir/loadshare/distributed.cc.o.d"
  "/root/repo/src/loadshare/facility.cc" "src/CMakeFiles/sprite.dir/loadshare/facility.cc.o" "gcc" "src/CMakeFiles/sprite.dir/loadshare/facility.cc.o.d"
  "/root/repo/src/loadshare/node.cc" "src/CMakeFiles/sprite.dir/loadshare/node.cc.o" "gcc" "src/CMakeFiles/sprite.dir/loadshare/node.cc.o.d"
  "/root/repo/src/loadshare/shared_file.cc" "src/CMakeFiles/sprite.dir/loadshare/shared_file.cc.o" "gcc" "src/CMakeFiles/sprite.dir/loadshare/shared_file.cc.o.d"
  "/root/repo/src/migration/manager.cc" "src/CMakeFiles/sprite.dir/migration/manager.cc.o" "gcc" "src/CMakeFiles/sprite.dir/migration/manager.cc.o.d"
  "/root/repo/src/proc/syscalls.cc" "src/CMakeFiles/sprite.dir/proc/syscalls.cc.o" "gcc" "src/CMakeFiles/sprite.dir/proc/syscalls.cc.o.d"
  "/root/repo/src/proc/table.cc" "src/CMakeFiles/sprite.dir/proc/table.cc.o" "gcc" "src/CMakeFiles/sprite.dir/proc/table.cc.o.d"
  "/root/repo/src/rpc/rpc.cc" "src/CMakeFiles/sprite.dir/rpc/rpc.cc.o" "gcc" "src/CMakeFiles/sprite.dir/rpc/rpc.cc.o.d"
  "/root/repo/src/sim/cpu.cc" "src/CMakeFiles/sprite.dir/sim/cpu.cc.o" "gcc" "src/CMakeFiles/sprite.dir/sim/cpu.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/sprite.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/sprite.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/sprite.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/sprite.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/sprite.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/sprite.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/CMakeFiles/sprite.dir/sim/time.cc.o" "gcc" "src/CMakeFiles/sprite.dir/sim/time.cc.o.d"
  "/root/repo/src/util/log.cc" "src/CMakeFiles/sprite.dir/util/log.cc.o" "gcc" "src/CMakeFiles/sprite.dir/util/log.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/sprite.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/sprite.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/sprite.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/sprite.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sprite.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sprite.dir/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/sprite.dir/util/table.cc.o" "gcc" "src/CMakeFiles/sprite.dir/util/table.cc.o.d"
  "/root/repo/src/vm/vm.cc" "src/CMakeFiles/sprite.dir/vm/vm.cc.o" "gcc" "src/CMakeFiles/sprite.dir/vm/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
