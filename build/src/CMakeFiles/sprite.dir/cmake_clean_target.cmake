file(REMOVE_RECURSE
  "libsprite.a"
)
