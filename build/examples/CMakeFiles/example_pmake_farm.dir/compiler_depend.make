# Empty compiler generated dependencies file for example_pmake_farm.
# This may be replaced when dependencies are built.
