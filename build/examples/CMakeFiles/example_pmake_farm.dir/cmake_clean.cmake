file(REMOVE_RECURSE
  "CMakeFiles/example_pmake_farm.dir/pmake_farm.cpp.o"
  "CMakeFiles/example_pmake_farm.dir/pmake_farm.cpp.o.d"
  "example_pmake_farm"
  "example_pmake_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pmake_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
