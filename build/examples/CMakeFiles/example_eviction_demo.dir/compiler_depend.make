# Empty compiler generated dependencies file for example_eviction_demo.
# This may be replaced when dependencies are built.
