file(REMOVE_RECURSE
  "CMakeFiles/example_eviction_demo.dir/eviction_demo.cpp.o"
  "CMakeFiles/example_eviction_demo.dir/eviction_demo.cpp.o.d"
  "example_eviction_demo"
  "example_eviction_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_eviction_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
