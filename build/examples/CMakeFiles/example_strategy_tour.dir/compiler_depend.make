# Empty compiler generated dependencies file for example_strategy_tour.
# This may be replaced when dependencies are built.
