file(REMOVE_RECURSE
  "CMakeFiles/example_strategy_tour.dir/strategy_tour.cpp.o"
  "CMakeFiles/example_strategy_tour.dir/strategy_tour.cpp.o.d"
  "example_strategy_tour"
  "example_strategy_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_strategy_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
